#include <gtest/gtest.h>

#include "src/common/thread_pool.h"
#include "src/core/synthetic.h"
#include "src/runtime/firmware_image.h"
#include "src/runtime/profile.h"
#include "src/data/synth.h"
#include "src/runtime/search.h"
#include "tests/test_util.h"

namespace neuroc {
namespace {

TEST(IntelHexTest, EmitsEofRecord) {
  const std::string hex = EmitIntelHex({});
  EXPECT_EQ(hex, ":00000001FF\n");
}

TEST(IntelHexTest, SingleChunkRoundTrip) {
  FirmwareChunk chunk;
  chunk.addr = 0x08000000;
  for (int i = 0; i < 100; ++i) {
    chunk.bytes.push_back(static_cast<uint8_t>(i * 7));
  }
  const std::vector<FirmwareChunk> chunks{chunk};
  const std::string hex = EmitIntelHex(chunks);
  auto parsed = ParseIntelHex(hex);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0].addr, 0x08000000u);
  EXPECT_EQ((*parsed)[0].bytes, chunk.bytes);
}

TEST(IntelHexTest, MultiChunkRoundTripSorted) {
  FirmwareChunk a{0x08002000, {1, 2, 3}};
  FirmwareChunk b{0x08000000, {9, 8, 7, 6}};
  const std::vector<FirmwareChunk> chunks{a, b};
  auto parsed = ParseIntelHex(EmitIntelHex(chunks));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].addr, 0x08000000u);
  EXPECT_EQ((*parsed)[1].addr, 0x08002000u);
  EXPECT_EQ((*parsed)[0].bytes, b.bytes);
  EXPECT_EQ((*parsed)[1].bytes, a.bytes);
}

TEST(IntelHexTest, CrossesSegmentBoundaryWithElaRecords) {
  // Data spanning a 64 KiB boundary must be split with a new type-04 record.
  FirmwareChunk chunk;
  chunk.addr = 0x0800FFF8;
  for (int i = 0; i < 32; ++i) {
    chunk.bytes.push_back(static_cast<uint8_t>(i));
  }
  const std::vector<FirmwareChunk> chunks{chunk};
  const std::string hex = EmitIntelHex(chunks);
  // Two ELA records: 0x0800 and 0x0801.
  EXPECT_NE(hex.find(":020000040800F2"), std::string::npos);
  EXPECT_NE(hex.find(":020000040801F1"), std::string::npos);
  auto parsed = ParseIntelHex(hex);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 1u);  // merged back into one contiguous chunk
  EXPECT_EQ((*parsed)[0].addr, chunk.addr);
  EXPECT_EQ((*parsed)[0].bytes, chunk.bytes);
}

TEST(IntelHexTest, ChecksumValidation) {
  const std::vector<FirmwareChunk> cs{{0x08000000, {0xAA, 0xBB}}};
  std::string hex = EmitIntelHex(cs);
  // Corrupt one data nibble: checksum must fail.
  const size_t pos = hex.find("AABB");
  ASSERT_NE(pos, std::string::npos);
  hex[pos] = hex[pos] == 'A' ? 'B' : 'A';
  EXPECT_FALSE(ParseIntelHex(hex).has_value());
}

TEST(IntelHexTest, RejectsGarbage) {
  EXPECT_FALSE(ParseIntelHex("hello world").has_value());
  EXPECT_FALSE(ParseIntelHex(":zz").has_value());
  EXPECT_FALSE(ParseIntelHex("").has_value());  // no EOF record
}

TEST(IntelHexTest, KnownRecordBytes) {
  // 4 bytes {01,02,03,04} at address 0x0010:
  // checksum = -(0x04 + 0x00 + 0x10 + 0x00 + 0x01 + 0x02 + 0x03 + 0x04) = 0xE2.
  const std::vector<FirmwareChunk> cs{{0x00000010, {1, 2, 3, 4}}};
  const std::string hex = EmitIntelHex(cs);
  EXPECT_NE(hex.find(":0400100001020304E2"), std::string::npos) << hex;
}

TEST(FirmwareTest, ModelFirmwareMatchesSimulatorMemory) {
  // The emitted firmware, parsed back and loaded into a fresh machine, must reproduce the
  // exact flash content the DeployedModel path creates.
  testutil::TestModelSpec spec;
  spec.dims = {64, 16};
  spec.final_relu = true;
  NeuroCModel model = testutil::MakeTestModel(21, spec);

  const std::string hex = FirmwareHexForModel(model);
  auto chunks = ParseIntelHex(hex);
  ASSERT_TRUE(chunks.has_value());
  ASSERT_GE(chunks->size(), 1u);

  DeployedModel deployed = DeployedModel::Deploy(model);
  for (const FirmwareChunk& chunk : *chunks) {
    std::vector<uint8_t> actual(chunk.bytes.size());
    deployed.machine().memory().HostRead(chunk.addr, actual);
    EXPECT_EQ(actual, chunk.bytes) << "chunk at 0x" << std::hex << chunk.addr;
  }
}

TEST(ProfileTest, CategoriesSumToInstructionCount) {
  testutil::TestModelSpec spec;
  spec.dims = {128, 32};
  spec.density = 0.15;
  spec.final_relu = true;
  NeuroCModel model = testutil::MakeTestModel(22, spec);
  DeployedModel deployed = DeployedModel::Deploy(model);
  const ExecutionProfile p = ProfileInference(deployed);
  EXPECT_GT(p.instructions, 0u);
  EXPECT_EQ(p.loads + p.stores + p.alu + p.multiplies + p.branches + p.stack_ops,
            p.instructions);
  EXPECT_GT(p.CyclesPerInstruction(), 1.0);
  EXPECT_LT(p.CyclesPerInstruction(), 3.0);
  // One multiply per output neuron (the per-neuron scale) — the MAC-free property.
  EXPECT_EQ(p.multiplies, 32u);
  const std::string report = FormatProfile(p);
  EXPECT_NE(report.find("CPI"), std::string::npos);
}

TEST(ProfileTest, MlpIsMultiplyHeavyNeuroCIsNot) {
  // The paper's core claim, measured at the instruction level: the dense MLP executes one
  // multiply per connection, Neuro-C one per neuron.
  Rng rng(23);
  std::vector<QuantDenseLayer> dense;
  dense.push_back(MakeSyntheticDenseLayer(128, 32, true, 10, rng));
  MlpModel mlp = MlpModel::FromLayers(std::move(dense));
  DeployedModel dm = DeployedModel::Deploy(mlp);
  const ExecutionProfile mp = ProfileInference(dm);
  EXPECT_EQ(mp.multiplies, 128u * 32u);

  SyntheticNeuroCLayerSpec spec;
  spec.in_dim = 128;
  spec.out_dim = 32;
  spec.density = 0.15;
  std::vector<QuantNeuroCLayer> layers;
  layers.push_back(MakeSyntheticNeuroCLayer(spec, rng));
  NeuroCModel nc = NeuroCModel::FromLayers(std::move(layers));
  DeployedModel dn = DeployedModel::Deploy(nc);
  const ExecutionProfile np = ProfileInference(dn);
  EXPECT_EQ(np.multiplies, 32u);
  EXPECT_LT(np.multiplies * 100, mp.multiplies);
}

TEST(SearchTest, FindsFeasibleConfigurationsOnDigits) {
  Dataset all = MakeDigits8x8(800, 5);
  Rng rng(6);
  auto [train, test] = all.Split(0.25, rng);
  SearchSpace space;
  space.width_choices = {16, 32};
  space.max_hidden_layers = 1;
  space.density_choices = {0.1f, 0.2f};
  TrainConfig cfg;
  cfg.epochs = 4;
  cfg.batch_size = 32;
  cfg.learning_rate = 3e-3f;
  const SearchResult result = RandomSearch(train, test, space, {}, 4, cfg, 77);
  EXPECT_EQ(result.candidates.size(), 4u);
  ASSERT_GE(result.best, 0);
  const SearchCandidate& best = result.candidates[static_cast<size_t>(result.best)];
  EXPECT_TRUE(best.feasible);
  EXPECT_GT(best.accuracy, 0.5f);
  EXPECT_LE(best.program_bytes, 128u * 1024);
  EXPECT_FALSE(result.pareto.empty());
}

TEST(SearchTest, ParetoFrontIsMonotone) {
  Dataset all = MakeDigits8x8(800, 6);
  Rng rng(7);
  auto [train, test] = all.Split(0.25, rng);
  SearchSpace space;
  space.width_choices = {8, 16, 32, 64};
  space.max_hidden_layers = 1;
  space.density_choices = {0.1f, 0.25f};
  TrainConfig cfg;
  cfg.epochs = 4;
  cfg.batch_size = 32;
  cfg.learning_rate = 3e-3f;
  const SearchResult result = RandomSearch(train, test, space, {}, 6, cfg, 99);
  // Along the Pareto front: bytes ascend, accuracy strictly ascends.
  for (size_t i = 1; i < result.pareto.size(); ++i) {
    const auto& prev = result.candidates[result.pareto[i - 1]];
    const auto& cur = result.candidates[result.pareto[i]];
    EXPECT_LE(prev.program_bytes, cur.program_bytes);
    EXPECT_LT(prev.accuracy, cur.accuracy);
  }
}

TEST(SearchTest, LatencyConstraintFiltersCandidates) {
  Dataset all = MakeDigits8x8(600, 8);
  Rng rng(9);
  auto [train, test] = all.Split(0.25, rng);
  SearchSpace space;
  space.width_choices = {64};
  space.max_hidden_layers = 1;
  space.density_choices = {0.3f};
  TrainConfig cfg;
  cfg.epochs = 2;
  cfg.batch_size = 32;
  SearchConstraints constraints;
  constraints.max_latency_ms = 0.001;  // impossible
  const SearchResult result = RandomSearch(train, test, space, constraints, 1, cfg, 3);
  EXPECT_EQ(result.best, -1);
  EXPECT_TRUE(result.pareto.empty());
  EXPECT_FALSE(result.candidates[0].feasible);
}

// Trials run on the shared pool with per-trial RNG streams and slot-addressed results, so
// the full SearchResult must be byte-identical no matter how many workers execute it.
TEST(SearchTest, ResultsByteIdenticalAcrossThreadCounts) {
  Dataset all = MakeDigits8x8(500, 11);
  Rng rng(12);
  auto [train, test] = all.Split(0.25, rng);
  SearchSpace space;
  space.width_choices = {16, 32};
  space.max_hidden_layers = 1;
  space.density_choices = {0.1f, 0.2f};
  TrainConfig cfg;
  cfg.epochs = 2;
  cfg.batch_size = 32;
  cfg.learning_rate = 3e-3f;

  auto run = [&](unsigned threads) {
    ThreadPool::SetGlobalThreads(threads);
    return RandomSearch(train, test, space, {}, 4, cfg, 123);
  };
  const SearchResult seq = run(1);
  const SearchResult par = run(4);
  ThreadPool::SetGlobalThreads(DefaultThreadCount());

  ASSERT_EQ(seq.candidates.size(), par.candidates.size());
  for (size_t i = 0; i < seq.candidates.size(); ++i) {
    const SearchCandidate& a = seq.candidates[i];
    const SearchCandidate& b = par.candidates[i];
    EXPECT_EQ(a.description, b.description) << i;
    EXPECT_EQ(a.spec.hidden, b.spec.hidden) << i;
    EXPECT_EQ(a.accuracy, b.accuracy) << i;  // bitwise: training is thread-invariant
    EXPECT_EQ(a.program_bytes, b.program_bytes) << i;
    EXPECT_EQ(a.latency_ms, b.latency_ms) << i;
    EXPECT_EQ(a.feasible, b.feasible) << i;
  }
  EXPECT_EQ(seq.pareto, par.pareto);
  EXPECT_EQ(seq.best, par.best);
}

}  // namespace
}  // namespace neuroc
