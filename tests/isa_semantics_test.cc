// Architectural-semantics tests for the CPU executor: NZCV flag behaviour, shift corner
// cases, carry chains and PC-relative rules, cross-checked against the ARMv6-M reference
// manual semantics. These complement sim_test's program-level tests with per-instruction
// assertions on CPU state.

#include <gtest/gtest.h>

#include "src/isa/assembler.h"
#include "src/sim/machine.h"

namespace neuroc {
namespace {

constexpr uint32_t kFlash = 0x08000000;

// Runs a fragment and returns the CPU for state inspection.
struct RunState {
  std::unique_ptr<Machine> machine;
  CpuFlags flags;
  uint32_t r0;
  uint32_t r1;
};

RunState RunAsm(const std::string& body, std::initializer_list<uint32_t> args = {}) {
  RunState st;
  st.machine = std::make_unique<Machine>();
  const AssembledProgram p = Assemble(body + "\nbx lr\n", kFlash);
  st.machine->LoadBytes(kFlash, p.bytes);
  st.machine->CallFunction(kFlash, args);
  st.flags = st.machine->cpu().flags();
  st.r0 = st.machine->cpu().reg(0);
  st.r1 = st.machine->cpu().reg(1);
  return st;
}

// --- Add/sub flags ---------------------------------------------------------

TEST(FlagSemanticsTest, AddSetsCarryOnUnsignedOverflow) {
  auto st = RunAsm("adds r0, r0, r1", {0xFFFFFFFFu, 1});
  EXPECT_EQ(st.r0, 0u);
  EXPECT_TRUE(st.flags.z);
  EXPECT_TRUE(st.flags.c);
  EXPECT_FALSE(st.flags.v);
}

TEST(FlagSemanticsTest, AddSetsOverflowOnSignedOverflow) {
  auto st = RunAsm("adds r0, r0, r1", {0x7FFFFFFFu, 1});
  EXPECT_EQ(st.r0, 0x80000000u);
  EXPECT_TRUE(st.flags.n);
  EXPECT_FALSE(st.flags.c);
  EXPECT_TRUE(st.flags.v);
}

TEST(FlagSemanticsTest, SubSetsCarryWhenNoBorrow) {
  // ARM convention: C = NOT borrow.
  auto st = RunAsm("subs r0, r0, r1", {5, 3});
  EXPECT_EQ(st.r0, 2u);
  EXPECT_TRUE(st.flags.c);
  auto st2 = RunAsm("subs r0, r0, r1", {3, 5});
  EXPECT_EQ(st2.r0, static_cast<uint32_t>(-2));
  EXPECT_FALSE(st2.flags.c);
  EXPECT_TRUE(st2.flags.n);
}

TEST(FlagSemanticsTest, SubSignedOverflow) {
  auto st = RunAsm("subs r0, r0, r1", {0x80000000u, 1});
  EXPECT_EQ(st.r0, 0x7FFFFFFFu);
  EXPECT_TRUE(st.flags.v);
  EXPECT_FALSE(st.flags.n);
}

TEST(FlagSemanticsTest, CmpDoesNotWriteRegisters) {
  auto st = RunAsm("cmp r0, r1", {7, 7});
  EXPECT_EQ(st.r0, 7u);
  EXPECT_TRUE(st.flags.z);
  EXPECT_TRUE(st.flags.c);
}

TEST(FlagSemanticsTest, CmnAddsForComparison) {
  auto st = RunAsm("cmn r0, r1", {5, static_cast<uint32_t>(-5)});
  EXPECT_TRUE(st.flags.z);
  EXPECT_TRUE(st.flags.c);  // unsigned wrap
}

TEST(FlagSemanticsTest, NegOfZeroSetsCarry) {
  // RSBS #0 of 0: result 0, carry set (no borrow).
  auto st = RunAsm("rsbs r0, r0, #0", {0});
  EXPECT_EQ(st.r0, 0u);
  EXPECT_TRUE(st.flags.z);
  EXPECT_TRUE(st.flags.c);
  auto st2 = RunAsm("rsbs r0, r0, #0", {1});
  EXPECT_EQ(st2.r0, 0xFFFFFFFFu);
  EXPECT_FALSE(st2.flags.c);
}

// --- Logical ops preserve C/V ----------------------------------------------

TEST(FlagSemanticsTest, LogicalOpsPreserveCarry) {
  // Set carry via adds, then AND must not disturb it.
  auto st = RunAsm(R"(
    movs r2, #0
    mvns r2, r2        @ r2 = 0xFFFFFFFF
    adds r2, r2, r2    @ sets C
    ands r0, r1
  )", {0xF0F0F0F0u, 0x0F0F0F0Fu});
  EXPECT_EQ(st.r0, 0u);
  EXPECT_TRUE(st.flags.z);
  EXPECT_TRUE(st.flags.c);
}

TEST(FlagSemanticsTest, MulsSetsOnlyNZ) {
  auto st = RunAsm(R"(
    movs r2, #0
    mvns r2, r2
    adds r2, r2, r2    @ sets C
    muls r0, r1, r0
  )", {0x10000u, 0x10000u});
  EXPECT_EQ(st.r0, 0u);  // low 32 bits of 2^32
  EXPECT_TRUE(st.flags.z);
  EXPECT_TRUE(st.flags.c);  // preserved per ARMv6-M
}

// --- Shift corner cases -----------------------------------------------------

TEST(ShiftSemanticsTest, LslImmCarryIsLastBitOut) {
  auto st = RunAsm("lsls r0, r0, #1", {0x80000001u});
  EXPECT_EQ(st.r0, 2u);
  EXPECT_TRUE(st.flags.c);
  auto st2 = RunAsm("lsls r0, r0, #1", {1});
  EXPECT_FALSE(st2.flags.c);
}

TEST(ShiftSemanticsTest, LsrImmZeroEncodesShift32) {
  // `lsrs rd, rm, #0` assembles to shift-32 semantics? Our assembler passes imm 0 through,
  // which the CPU executes as shift 32 per the architecture.
  auto st = RunAsm("lsrs r0, r0, #0", {0x80000000u});
  EXPECT_EQ(st.r0, 0u);
  EXPECT_TRUE(st.flags.c);  // bit 31 out
}

TEST(ShiftSemanticsTest, AsrImmZeroEncodesShift32) {
  auto st = RunAsm("asrs r0, r0, #0", {0x80000000u});
  EXPECT_EQ(st.r0, 0xFFFFFFFFu);
  EXPECT_TRUE(st.flags.c);
  auto st2 = RunAsm("asrs r0, r0, #0", {0x7FFFFFFFu});
  EXPECT_EQ(st2.r0, 0u);
  EXPECT_FALSE(st2.flags.c);
}

TEST(ShiftSemanticsTest, RegisterShiftByZeroLeavesCarry) {
  auto st = RunAsm(R"(
    movs r2, #0
    mvns r2, r2
    adds r2, r2, r2    @ C := 1
    movs r3, #0
    lsls r0, r3        @ shift by 0: value and C unchanged
  )", {0xABCD0123u});
  EXPECT_EQ(st.r0, 0xABCD0123u);
  EXPECT_TRUE(st.flags.c);
}

TEST(ShiftSemanticsTest, RegisterShiftBy32AndBeyond) {
  auto st = RunAsm("movs r2, #32\nlsls r0, r2", {1});
  EXPECT_EQ(st.r0, 0u);
  EXPECT_TRUE(st.flags.c);  // bit 0 out
  auto st2 = RunAsm("movs r2, #33\nlsls r0, r2", {0xFFFFFFFFu});
  EXPECT_EQ(st2.r0, 0u);
  EXPECT_FALSE(st2.flags.c);
  auto st3 = RunAsm("movs r2, #40\nasrs r0, r2", {0x80000000u});
  EXPECT_EQ(st3.r0, 0xFFFFFFFFu);
  EXPECT_TRUE(st3.flags.c);
}

TEST(ShiftSemanticsTest, RorRotates) {
  auto st = RunAsm("movs r2, #8\nrors r0, r2", {0x000000FFu});
  EXPECT_EQ(st.r0, 0xFF000000u);
  EXPECT_TRUE(st.flags.n);
  EXPECT_TRUE(st.flags.c);  // C := bit31 of result
}

// --- ADC/SBC chains ----------------------------------------------------------

TEST(CarryChainTest, Add64BitViaAdcs) {
  // (0xFFFFFFFF_FFFFFFFF + 1) low/high.
  auto st = RunAsm(R"(
    movs r2, #1
    movs r3, #0
    adds r0, r0, r2   @ low
    adcs r1, r3       @ high
  )", {0xFFFFFFFFu, 0xFFFFFFFFu});
  EXPECT_EQ(st.r0, 0u);
  EXPECT_EQ(st.r1, 0u);
  EXPECT_TRUE(st.flags.c);
}

TEST(CarryChainTest, Sub64BitViaSbcs) {
  // (0x1_00000000 - 1) = 0x0_FFFFFFFF.
  auto st = RunAsm(R"(
    movs r2, #1
    movs r3, #0
    subs r0, r0, r2
    sbcs r1, r3
  )", {0u, 1u});
  EXPECT_EQ(st.r0, 0xFFFFFFFFu);
  EXPECT_EQ(st.r1, 0u);
}

// --- PC-relative and hi-register behaviour ----------------------------------

TEST(PcSemanticsTest, AdrComputesAlignedPcPlusOffset) {
  auto st = RunAsm(R"(
    adr r0, data
    ldr r1, [r0, #0]
    movs r0, r1
    b out
    .align 2
data:
    .word 0x13572468
out:
  )");
  EXPECT_EQ(st.r0, 0x13572468u);
}

TEST(PcSemanticsTest, MovFromPcReadsInstrPlus4) {
  auto st = RunAsm("mov r0, pc");
  // mov is the first instruction at kFlash; PC reads as addr+4.
  EXPECT_EQ(st.r0, kFlash + 4);
}

TEST(PcSemanticsTest, HiRegisterAddAndMove) {
  auto st = RunAsm(R"(
    mov r8, r0
    movs r0, #0
    add r0, r8
    mov r9, r0
    movs r0, #0
    mov r0, r9
  )", {1234});
  EXPECT_EQ(st.r0, 1234u);
}

TEST(PcSemanticsTest, BlxRegisterCallsAndReturns) {
  auto st = RunAsm(R"(
    ldr r2, =helper
    adds r2, r2, #1      @ Thumb bit
    push {lr}
    blx r2
    pop {r3}
    mov lr, r3
    b done
helper:
    movs r0, #77
    bx lr
done:
  )");
  EXPECT_EQ(st.r0, 77u);
}

// --- Extend / reverse --------------------------------------------------------

TEST(ExtendSemanticsTest, AllExtendForms) {
  EXPECT_EQ(RunAsm("sxtb r0, r0", {0x000000FFu}).r0, 0xFFFFFFFFu);
  EXPECT_EQ(RunAsm("sxtb r0, r0", {0x0000007Fu}).r0, 0x7Fu);
  EXPECT_EQ(RunAsm("sxth r0, r0", {0x0000FFFFu}).r0, 0xFFFFFFFFu);
  EXPECT_EQ(RunAsm("uxtb r0, r0", {0xFFFFFFFFu}).r0, 0xFFu);
  EXPECT_EQ(RunAsm("uxth r0, r0", {0xFFFFFFFFu}).r0, 0xFFFFu);
}

TEST(ExtendSemanticsTest, RevForms) {
  EXPECT_EQ(RunAsm("rev r0, r0", {0x12345678u}).r0, 0x78563412u);
  EXPECT_EQ(RunAsm("rev16 r0, r0", {0x12345678u}).r0, 0x34127856u);
  EXPECT_EQ(RunAsm("revsh r0, r0", {0x00000080u}).r0, 0xFFFF8000u);
}

// --- Conditional branch matrix ----------------------------------------------

struct CondCase {
  const char* cond;
  uint32_t a;
  uint32_t b;
  bool taken;  // expected for `cmp a, b ; b<cond>`
};

class CondBranchTest : public ::testing::TestWithParam<CondCase> {};

TEST_P(CondBranchTest, TakesExactlyWhenConditionHolds) {
  const CondCase c = GetParam();
  const std::string src = std::string("cmp r0, r1\nb") + c.cond +
                          " taken\nmovs r0, #0\nb out\ntaken:\nmovs r0, #1\nout:\n";
  auto st = RunAsm(src, {c.a, c.b});
  EXPECT_EQ(st.r0, c.taken ? 1u : 0u) << c.cond << " " << c.a << " vs " << c.b;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CondBranchTest,
    ::testing::Values(
        CondCase{"eq", 5, 5, true}, CondCase{"eq", 5, 6, false},
        CondCase{"ne", 5, 6, true}, CondCase{"ne", 5, 5, false},
        CondCase{"hs", 5, 5, true}, CondCase{"hs", 4, 5, false},
        CondCase{"lo", 4, 5, true}, CondCase{"lo", 5, 5, false},
        CondCase{"mi", 3, 5, true}, CondCase{"mi", 5, 3, false},
        CondCase{"pl", 5, 3, true}, CondCase{"pl", 3, 5, false},
        CondCase{"ge", 5, 5, true}, CondCase{"ge", 0x80000000u, 1, false},
        CondCase{"lt", 0x80000000u, 1, true}, CondCase{"lt", 1, 1, false},
        CondCase{"gt", 2, 1, true}, CondCase{"gt", 1, 1, false},
        CondCase{"le", 1, 1, true}, CondCase{"le", 2, 1, false},
        CondCase{"hi", 0xFFFFFFFFu, 1, true}, CondCase{"hi", 1, 1, false},
        CondCase{"ls", 1, 1, true}, CondCase{"ls", 0xFFFFFFFFu, 1, false},
        // Signed overflow makes GE/LT diverge from the N flag alone.
        CondCase{"ge", 0x7FFFFFFFu, 0xFFFFFFFFu, true},
        CondCase{"lt", 0x80000000u, 0x7FFFFFFFu, true}));

// --- Stack discipline ---------------------------------------------------------

TEST(StackSemanticsTest, PushStoresAscendingRegistersAtDescendingAddresses) {
  Machine m;
  const AssembledProgram p = Assemble(R"(
    movs r4, #11
    movs r5, #22
    movs r6, #33
    push {r4, r5, r6}
    mov r0, sp
    pop {r4, r5, r6}
    bx lr
  )", kFlash);
  m.LoadBytes(kFlash, p.bytes);
  m.CallFunction(kFlash, {});
  const uint32_t sp_during = m.ReturnValue();
  // Lowest register at lowest address.
  EXPECT_EQ(m.memory().Read32(sp_during + 0), 11u);
  EXPECT_EQ(m.memory().Read32(sp_during + 4), 22u);
  EXPECT_EQ(m.memory().Read32(sp_during + 8), 33u);
}

TEST(StackSemanticsTest, SpArithmeticForms) {
  auto st = RunAsm(R"(
    mov r2, sp
    sub sp, #16
    add r0, sp, #4
    mov r1, sp
    add sp, #16
    subs r0, r0, r1      @ should be 4
  )");
  EXPECT_EQ(st.r0, 4u);
}

TEST(StackSemanticsTest, SpRelativeLoadStore) {
  auto st = RunAsm(R"(
    sub sp, #8
    str r0, [sp, #4]
    ldr r1, [sp, #4]
    movs r0, r1
    add sp, #8
  )", {0xDEADBEEFu});
  EXPECT_EQ(st.r0, 0xDEADBEEFu);
}

}  // namespace
}  // namespace neuroc
