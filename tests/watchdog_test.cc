// Watchdog supervisor: runaway guest execution must be stopped with a structured
// kDeadlineExceeded fault — distinguishable from guest faults, with PC provenance — at
// exactly the same retired instruction on every decode path, including when the cycle
// budget lands inside or exactly on a compiled-block boundary. The recovery ladder must
// then bring a watchdog-stricken deployment back to correct predictions.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/synthetic.h"
#include "src/isa/assembler.h"
#include "src/runtime/deployed_model.h"
#include "src/runtime/recovery.h"
#include "src/sim/machine.h"
#include "tests/test_util.h"

namespace neuroc {
namespace {

constexpr uint32_t kFlash = 0x08000000;

enum class Path { kLegacy, kCached, kBlock };
constexpr Path kAllPaths[] = {Path::kLegacy, Path::kCached, Path::kBlock};

void ConfigurePath(Cpu& cpu, Path path) {
  switch (path) {
    case Path::kLegacy: cpu.EnableDecodeCache(false); break;
    case Path::kCached: cpu.EnableBlockCompile(false); break;
    case Path::kBlock: break;
  }
}

NeuroCModel SmallModel(uint64_t seed, EncodingKind kind = EncodingKind::kBlock) {
  testutil::TestModelSpec spec;
  spec.dims = {48, 20, 10};
  spec.density = 0.2;
  spec.encoding = kind;
  return testutil::MakeTestModel(seed, spec);
}

// CpuProbe that remembers the first retired instruction address — a guaranteed-hot
// kernel address to patch an infinite loop over.
struct FirstPcProbe : CpuProbe {
  void OnRetire(uint32_t addr, Op, uint32_t) override {
    if (first == 0) first = addr;
  }
  uint32_t first = 0;
};

TEST(WatchdogTest, ArmedWatchdogIsInvisibleOnTheFaultFreePath) {
  DeployedModel plain = DeployedModel::Deploy(SmallModel(31));
  DeployedModel armed = DeployedModel::Deploy(SmallModel(31));
  ASSERT_TRUE(armed.ArmWatchdog(8.0).ok());
  EXPECT_GT(armed.watchdog_budget(), 0u);

  Rng rng(2);
  for (int rep = 0; rep < 3; ++rep) {
    const std::vector<int8_t> input = MakeRandomInput(plain.input_dim(), rng);
    EXPECT_EQ(plain.Predict(input), armed.Predict(input));
    EXPECT_EQ(plain.report().cycles_per_inference, armed.report().cycles_per_inference);
    EXPECT_EQ(plain.LastOutput(), armed.LastOutput());
  }
  // Identical simulated state after identical work: the supervisor costs zero cycles.
  EXPECT_EQ(plain.machine().cpu().cycles(), armed.machine().cpu().cycles());
  EXPECT_EQ(plain.machine().cpu().instructions(), armed.machine().cpu().instructions());
}

TEST(WatchdogTest, InfiniteLoopIsCaughtClassifiedAndRecovered) {
  DeployedModel dm = DeployedModel::Deploy(SmallModel(32));
  ASSERT_TRUE(dm.ArmWatchdog(8.0).ok());

  Rng rng(3);
  const std::vector<int8_t> input = MakeRandomInput(dm.input_dim(), rng);
  const int golden = dm.Predict(input);
  dm.Scrub();

  // Find a kernel address on the execution path, then patch `b .` (0xE7FE) over it —
  // the canonical seized-firmware failure a hardware watchdog exists for.
  FirstPcProbe probe;
  dm.machine().cpu().set_probe(&probe);
  dm.Predict(input);
  dm.machine().cpu().set_probe(nullptr);
  ASSERT_NE(probe.first, 0u);
  dm.Scrub();
  const uint8_t spin[2] = {0xFE, 0xE7};
  dm.machine().memory().HostWrite(probe.first, spin);

  StatusOr<int> pred = dm.TryPredict(input);
  ASSERT_FALSE(pred.ok());
  EXPECT_EQ(pred.status().code(), ErrorCode::kDeadlineExceeded);
  ASSERT_NE(pred.status().fault(), nullptr);
  const FaultReport& fault = *pred.status().fault();
  EXPECT_EQ(fault.code, ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(fault.pc, probe.first);  // PC provenance: stuck exactly on the patched spin
  EXPECT_GT(fault.cycles, 0u);

  // Scrub restores pristine flash; the supervised deployment predicts correctly again.
  dm.Scrub();
  StatusOr<int> retry = dm.TryPredict(input);
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(*retry, golden);
}

TEST(WatchdogTest, RecoveryLadderResolvesWatchdogFaultViaScrubRung) {
  RecoveryPolicy policy;  // defaults: full ladder, watchdog armed
  StatusOr<GuardedModel> guarded =
      GuardedModel::Create(SmallModel(33), MachineConfig{}, policy);
  ASSERT_TRUE(guarded.ok());
  GuardedModel& gm = *guarded;

  Rng rng(4);
  const std::vector<int8_t> input = MakeRandomInput(gm.deployed().input_dim(), rng);
  const GuardedResult clean = gm.Predict(input);
  ASSERT_TRUE(clean.ok);
  ASSERT_EQ(clean.resolved_by, RecoveryRung::kNone);

  FirstPcProbe probe;
  gm.deployed().machine().cpu().set_probe(&probe);
  gm.deployed().Predict(input);
  gm.deployed().machine().cpu().set_probe(nullptr);
  gm.deployed().Scrub();
  const uint8_t spin[2] = {0xFE, 0xE7};
  gm.deployed().machine().memory().HostWrite(probe.first, spin);

  const GuardedResult gr = gm.Predict(input);
  EXPECT_TRUE(gr.ok);
  EXPECT_EQ(gr.prediction, clean.prediction);
  EXPECT_TRUE(gr.faulted);
  EXPECT_EQ(gr.first_fault.code, ErrorCode::kDeadlineExceeded);
  // Flash damage: the RAM-only snapshot rung cannot fix it, the scrub rung must.
  EXPECT_EQ(gr.resolved_by, RecoveryRung::kScrubRetry);
  EXPECT_GT(gr.detection_cycles, 0u);
  EXPECT_EQ(gr.retries, 2);
}

// The budget boundary sweep: a compiled spin block whose cost would cross the deadline
// must fall back to stepping and fault on exactly the same retired instruction as the
// interpreter — for every consecutive budget value around multiple block periods,
// including budgets landing exactly on a block boundary.
TEST(WatchdogTest, DeadlineFiresIdenticallyAcrossPathsForEveryBudget) {
  const std::string spin =
      "loop:\n"
      "  adds r0, r0, #1\n"
      "  adds r1, r1, #1\n"
      "  adds r2, r2, #1\n"
      "  b loop\n";
  const AssembledProgram program = Assemble(spin, kFlash);

  struct Outcome {
    ErrorCode code;
    uint64_t cycles;
    uint64_t instructions;
    uint32_t pc;
  };
  for (uint64_t budget = 1; budget <= 64; ++budget) {
    Outcome outcomes[3];
    int i = 0;
    for (const Path path : kAllPaths) {
      Machine m;
      ConfigurePath(m.cpu(), path);
      m.LoadBytes(kFlash, program.bytes);
      const StatusOr<uint64_t> r = m.TryCallFunction(kFlash, {}, budget);
      ASSERT_FALSE(r.ok());
      const FaultReport& f = m.last_fault();
      outcomes[i++] = {f.code, f.cycles, f.instructions, f.pc};
    }
    for (int p = 1; p < 3; ++p) {
      EXPECT_EQ(outcomes[0].code, outcomes[p].code) << "budget=" << budget;
      EXPECT_EQ(outcomes[0].cycles, outcomes[p].cycles) << "budget=" << budget;
      EXPECT_EQ(outcomes[0].instructions, outcomes[p].instructions)
          << "budget=" << budget;
      EXPECT_EQ(outcomes[0].pc, outcomes[p].pc) << "budget=" << budget;
    }
    EXPECT_EQ(outcomes[0].code, ErrorCode::kDeadlineExceeded);
    // The deadline is a strict bound: the guest never runs past budget by more than the
    // cost of the instruction that crossed it.
    EXPECT_GT(outcomes[0].cycles, budget);
  }
}

// A generous budget must not perturb a terminating call in any way.
TEST(WatchdogTest, GenerousBudgetIsObservationallyFree) {
  const std::string count =
      "movs r0, #0\n"
      "movs r1, #50\n"
      "loop:\n"
      "  adds r0, r0, #1\n"
      "  subs r1, r1, #1\n"
      "  bne loop\n"
      "bx lr\n";
  const AssembledProgram program = Assemble(count, kFlash);
  for (const Path path : kAllPaths) {
    Machine plain, budgeted;
    ConfigurePath(plain.cpu(), path);
    ConfigurePath(budgeted.cpu(), path);
    plain.LoadBytes(kFlash, program.bytes);
    budgeted.LoadBytes(kFlash, program.bytes);
    const StatusOr<uint64_t> a = plain.TryCallFunction(kFlash, {});
    const StatusOr<uint64_t> b = budgeted.TryCallFunction(kFlash, {}, 1u << 20);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, *b);
    EXPECT_EQ(plain.ReturnValue(), budgeted.ReturnValue());
    EXPECT_EQ(plain.cpu().instructions(), budgeted.cpu().instructions());
  }
}

}  // namespace
}  // namespace neuroc
