// Observability subsystem tests (ctest -L obs): the cycle-exact sim profiler and its
// acceptance invariants (exact attribution, determinism, zero overhead when disabled), the
// host trace/metrics layer, and the shared JSON writer.

#include <gtest/gtest.h>

#include <array>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "src/common/logging.h"
#include "src/common/thread_pool.h"
#include "src/core/synthetic.h"
#include "src/obs/block_profiler.h"
#include "src/obs/energy.h"
#include "src/obs/json_reader.h"
#include "src/obs/json_writer.h"
#include "src/obs/metrics.h"
#include "src/obs/registry.h"
#include "src/obs/sim_profiler.h"
#include "tests/test_util.h"
#include "src/obs/trace.h"
#include "src/runtime/deployed_model.h"
#include "src/runtime/platform.h"
#include "src/runtime/profile.h"
#include "src/sim/guest_fault.h"

namespace neuroc {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON syntax checker (no parsing, just well-formedness) for validating the
// writer/trace output without adding a JSON dependency.
// ---------------------------------------------------------------------------

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view s) : s_(s) {}

  bool Valid() {
    SkipWs();
    if (!Value()) {
      return false;
    }
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
                                s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool Literal(std::string_view lit) {
    if (s_.compare(pos_, lit.size(), lit) != 0) {
      return false;
    }
    pos_ += lit.size();
    return true;
  }
  bool String() {
    if (pos_ >= s_.size() || s_[pos_] != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) {
          return false;
        }
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) {
      return false;
    }
    ++pos_;  // closing quote
    return true;
  }
  bool Number() {
    const size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < s_.size() && (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                                s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Value() {
    SkipWs();
    if (pos_ >= s_.size()) {
      return false;
    }
    switch (s_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }
  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!String()) {
        return false;
      }
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] != ':') {
        return false;
      }
      ++pos_;
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (pos_ < s_.size() && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    if (pos_ >= s_.size() || s_[pos_] != '}') {
      return false;
    }
    ++pos_;
    return true;
  }
  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (pos_ < s_.size() && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    if (pos_ >= s_.size() || s_[pos_] != ']') {
      return false;
    }
    ++pos_;
    return true;
  }

  std::string_view s_;
  size_t pos_ = 0;
};

NeuroCModel MakeSmallModel(uint64_t seed) { return testutil::MakeTestModel(seed); }

std::string ProfileJsonFor(uint64_t seed) {
  NeuroCModel model = MakeSmallModel(seed);
  DeployedModel deployed = DeployedModel::Deploy(model, Stm32f072rb().ToMachineConfig());
  const InferenceProfile profile = ProfileInferenceDetailed(deployed);
  JsonWriter w;
  WriteInferenceProfileJson(w, profile, deployed);
  return w.str();
}

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

TEST(JsonWriterTest, NestedDocumentIsWellFormed) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name").Value("bench \"quoted\"\n");
  w.Key("count").Value(static_cast<uint64_t>(42));
  w.Key("negative").Value(static_cast<int64_t>(-7));
  w.Key("ratio").Value(0.25);
  w.Key("flag").Value(true);
  w.Key("items").BeginArray();
  w.Value(1).Value(2).Value(3);
  w.BeginObject().Key("inner").Value("x").EndObject();
  w.EndArray();
  w.EndObject();
  ASSERT_TRUE(w.done());
  EXPECT_TRUE(JsonChecker(w.str()).Valid()) << w.str();
  EXPECT_NE(w.str().find("\"bench \\\"quoted\\\"\\n\""), std::string::npos);
}

TEST(JsonWriterTest, CompactModeHasNoNewlines) {
  JsonWriter w(0);
  w.BeginObject();
  w.Key("a").Value(1);
  w.Key("b").BeginArray().Value(2).Value(3).EndArray();
  w.EndObject();
  EXPECT_EQ(w.str().find('\n'), std::string::npos);
  EXPECT_TRUE(JsonChecker(w.str()).Valid()) << w.str();
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w(0);
  w.BeginArray();
  w.Value(std::numeric_limits<double>::infinity());
  w.Value(std::numeric_limits<double>::quiet_NaN());
  w.EndArray();
  EXPECT_EQ(w.str(), "[null,null]");
}

TEST(JsonWriterTest, EscapeHandlesControlChars) {
  EXPECT_EQ(JsonWriter::Escape("a\tb"), "a\\tb");
  EXPECT_EQ(JsonWriter::Escape(std::string_view("\x01", 1)), "\\u0001");
  EXPECT_EQ(JsonWriter::Escape("back\\slash"), "back\\\\slash");
}

// ---------------------------------------------------------------------------
// SymbolTable
// ---------------------------------------------------------------------------

TEST(SymbolTableTest, ResolveFindsGreatestEntryAtOrBelow) {
  std::map<std::string, uint32_t> symbols = {
      {"kern_a", 0x100}, {"loop_a", 0x120}, {"kern_b", 0x200}};
  SymbolTable table(symbols);
  EXPECT_EQ(table.Resolve(0x0FF), nullptr);
  ASSERT_NE(table.Resolve(0x100), nullptr);
  EXPECT_EQ(table.Resolve(0x100)->name, "kern_a");
  EXPECT_EQ(table.Resolve(0x11F)->name, "kern_a");
  EXPECT_EQ(table.Resolve(0x120)->name, "loop_a");
  EXPECT_EQ(table.Resolve(0x5000)->name, "kern_b");
}

TEST(SymbolTableTest, SameAddressLabelsJoin) {
  std::map<std::string, uint32_t> symbols = {
      {"alias_z", 0x100}, {"entry_a", 0x100}, {"other", 0x80}};
  SymbolTable table(symbols);
  ASSERT_EQ(table.entries().size(), 2u);
  EXPECT_EQ(table.Resolve(0x100)->name, "alias_z/entry_a");
}

// ---------------------------------------------------------------------------
// Profiler acceptance invariants
// ---------------------------------------------------------------------------

TEST(SimProfilerTest, PerPcCyclesSumToCpuCycles) {
  NeuroCModel model = MakeSmallModel(3);
  DeployedModel deployed = DeployedModel::Deploy(model, Stm32f072rb().ToMachineConfig());
  deployed.machine().cpu().ResetCounters();
  SimProfiler profiler;
  std::vector<int8_t> input(deployed.input_dim(), 5);
  {
    ScopedCpuProbe attach(deployed.machine().cpu(), &profiler);
    deployed.Predict(input);
  }
  EXPECT_EQ(profiler.total_cycles(), deployed.machine().cpu().cycles());
  EXPECT_EQ(profiler.total_instructions(), deployed.machine().cpu().instructions());

  uint64_t pc_cycle_sum = 0;
  for (const auto& [pc, stat] : profiler.pc_stats()) {
    pc_cycle_sum += stat.cycles;
  }
  EXPECT_EQ(pc_cycle_sum, profiler.total_cycles());
}

TEST(SimProfilerTest, HotspotCyclesSumToTotalExactly) {
  NeuroCModel model = MakeSmallModel(4);
  DeployedModel deployed = DeployedModel::Deploy(model, Stm32f072rb().ToMachineConfig());
  const InferenceProfile profile = ProfileInferenceDetailed(deployed);

  EXPECT_EQ(profile.hotspots.total_cycles, profile.summary.cycles);
  uint64_t symbol_cycles = 0;
  uint64_t symbol_instructions = 0;
  for (const SymbolHotspot& s : profile.hotspots.symbols) {
    symbol_cycles += s.cycles;
    symbol_instructions += s.instructions;
  }
  EXPECT_EQ(symbol_cycles, profile.summary.cycles);
  EXPECT_EQ(symbol_instructions, profile.summary.instructions);
  EXPECT_FALSE(profile.hotspots.symbols.empty());
  // Real kernels ran, so named symbols (not just "(unattributed)") must appear.
  bool named = false;
  for (const SymbolHotspot& s : profile.hotspots.symbols) {
    named |= s.name != "(unattributed)";
  }
  EXPECT_TRUE(named);
}

TEST(SimProfilerTest, CategoryCyclesSumToTotal) {
  NeuroCModel model = MakeSmallModel(5);
  DeployedModel deployed = DeployedModel::Deploy(model, Stm32f072rb().ToMachineConfig());
  const ExecutionProfile p = ProfileInference(deployed);
  EXPECT_GT(p.cycles, 0u);
  EXPECT_EQ(p.load_cycles + p.store_cycles + p.alu_cycles + p.multiply_cycles +
                p.branch_cycles + p.stack_cycles,
            p.cycles);
  EXPECT_EQ(p.loads + p.stores + p.alu + p.multiplies + p.branches + p.stack_ops,
            p.instructions);
}

TEST(SimProfilerTest, AttachingProbeDoesNotChangeSimulatedCounts) {
  NeuroCModel model = MakeSmallModel(6);
  std::vector<int8_t> input(64, 3);

  DeployedModel plain = DeployedModel::Deploy(model, Stm32f072rb().ToMachineConfig());
  plain.machine().cpu().ResetCounters();
  plain.Predict(input);
  const uint64_t cycles_plain = plain.machine().cpu().cycles();
  const uint64_t instructions_plain = plain.machine().cpu().instructions();

  DeployedModel probed = DeployedModel::Deploy(model, Stm32f072rb().ToMachineConfig());
  probed.machine().cpu().ResetCounters();
  SimProfiler profiler;
  {
    ScopedCpuProbe attach(probed.machine().cpu(), &profiler);
    probed.Predict(input);
  }
  EXPECT_EQ(probed.machine().cpu().cycles(), cycles_plain);
  EXPECT_EQ(probed.machine().cpu().instructions(), instructions_plain);
  EXPECT_EQ(profiler.total_cycles(), cycles_plain);
}

TEST(SimProfilerTest, ProfileJsonIsDeterministic) {
  const std::string a = ProfileJsonFor(11);
  const std::string b = ProfileJsonFor(11);
  EXPECT_EQ(a, b);  // byte-identical
  EXPECT_TRUE(JsonChecker(a).Valid());
  EXPECT_NE(a.find("\"schema\""), std::string::npos);
  EXPECT_NE(a.find("\"hotspots\""), std::string::npos);
}

TEST(SimProfilerTest, FormattedReportMentionsSymbolsAndStack) {
  NeuroCModel model = MakeSmallModel(12);
  DeployedModel deployed = DeployedModel::Deploy(model, Stm32f072rb().ToMachineConfig());
  const InferenceProfile profile = ProfileInferenceDetailed(deployed);
  const std::string text = FormatInferenceProfile(profile, deployed);
  EXPECT_NE(text.find("hotspots"), std::string::npos);
  EXPECT_NE(text.find("stack high water"), std::string::npos);
  EXPECT_NE(text.find("per-layer cycles"), std::string::npos);

  const std::string annotated =
      FormatInferenceProfile(profile, deployed, /*annotated_disassembly=*/true);
  EXPECT_GT(annotated.size(), text.size());
}

// ---------------------------------------------------------------------------
// Memory observability
// ---------------------------------------------------------------------------

TEST(MemObservabilityTest, HeatmapTotalsMatchAccessStats) {
  NeuroCModel model = MakeSmallModel(13);
  DeployedModel deployed = DeployedModel::Deploy(model, Stm32f072rb().ToMachineConfig());
  MemoryMap& mem = deployed.machine().memory();
  mem.ResetStats();
  mem.EnableHeatmap(64);
  std::vector<int8_t> input(deployed.input_dim(), 1);
  deployed.Predict(input);
  const MemHeatmap& hm = mem.heatmap();
  const auto sum = [](const std::vector<uint64_t>& v) {
    uint64_t s = 0;
    for (uint64_t x : v) {
      s += x;
    }
    return s;
  };
  EXPECT_EQ(sum(hm.flash_reads), mem.stats().flash_reads);
  EXPECT_EQ(sum(hm.sram_reads), mem.stats().sram_reads);
  EXPECT_EQ(sum(hm.sram_writes), mem.stats().sram_writes);
  mem.DisableHeatmap();
  EXPECT_EQ(mem.heatmap().bucket_bytes, 0u);
}

TEST(MemObservabilityTest, StackWatchSeesStackButNotActivations) {
  NeuroCModel model = MakeSmallModel(14);
  DeployedModel deployed = DeployedModel::Deploy(model, Stm32f072rb().ToMachineConfig());
  const InferenceProfile profile = ProfileInferenceDetailed(deployed);
  const MachineConfig& cfg = deployed.machine().config();
  // Kernels push/pop, so some stack is used; and it must fit inside SRAM above the
  // activation buffers.
  EXPECT_GT(profile.stack_bytes_used, 0u);
  EXPECT_LT(profile.stack_bytes_used, cfg.ram_size);
  EXPECT_EQ(profile.stack_bytes_used + profile.stack_headroom_bytes +
                (deployed.activation_top_addr() - cfg.ram_base),
            cfg.ram_size);
}

// ---------------------------------------------------------------------------
// Trace recorder
// ---------------------------------------------------------------------------

TEST(TraceTest, ChromeTraceJsonIsWellFormed) {
  TraceRecorder rec;
  rec.set_enabled(true);
  rec.Start();
  {
    TraceRecorder::Span outer(rec, "outer \"span\"");
    TraceRecorder::Span inner(rec, "inner");
  }
  rec.Counter("loss", 0.5);
  rec.AddCompleteEvent("layer_0", "sim", 0.0, 125.0);
  const std::string json = rec.ToChromeTraceJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_EQ(rec.event_count(), 4u);
}

TEST(TraceTest, SpansFromPoolThreadsAreRecorded) {
  TraceRecorder rec;
  rec.set_enabled(true);
  rec.Start();
  ParallelFor(0, 64, 1, [&](size_t i0, size_t i1) {
    for (size_t i = i0; i < i1; ++i) {
      TraceRecorder::Span span(rec, "chunk");
    }
  });
  EXPECT_EQ(rec.event_count(), 64u);
  EXPECT_TRUE(JsonChecker(rec.ToChromeTraceJson()).Valid());
}

TEST(TraceTest, DisabledRecorderRecordsNothing) {
  TraceRecorder rec;
  ASSERT_FALSE(rec.enabled());
  {
    TraceRecorder::Span span(rec, "ignored");
  }
  rec.Counter("ignored", 1.0);
  EXPECT_EQ(rec.event_count(), 0u);
}

// ---------------------------------------------------------------------------
// Metrics logger
// ---------------------------------------------------------------------------

TEST(MetricsLoggerTest, WritesOneWellFormedJsonObjectPerLine) {
  const std::string path = ::testing::TempDir() + "/neuroc_metrics_test.jsonl";
  std::remove(path.c_str());
  {
    MetricsLogger logger(path);
    ASSERT_TRUE(logger.ok());
    logger.Log({{"epoch", 1}, {"loss", 0.75}, {"note", std::string_view("first")}});
    logger.Log({{"epoch", 2}, {"loss", 0.5}});
  }
  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_TRUE(JsonChecker(line).Valid()) << line;
    EXPECT_EQ(line.front(), '{');
  }
  EXPECT_EQ(lines, 2);
  std::remove(path.c_str());
}

TEST(MetricsLoggerTest, EmptyPathIsNoOp) {
  MetricsLogger logger("");
  EXPECT_FALSE(logger.ok());
  logger.Log({{"epoch", 1}});  // must not crash
}

// ---------------------------------------------------------------------------
// Block-granular profiler: the fast-path attribution must be bit-identical to the
// step-interpreter probe (the tentpole invariant of the observability PR).
// ---------------------------------------------------------------------------

void ExpectProfilesBitIdentical(const PcProfile& block, const PcProfile& step) {
  EXPECT_EQ(block.total_instructions, step.total_instructions);
  EXPECT_EQ(block.total_cycles, step.total_cycles);
  EXPECT_EQ(block.op_counts, step.op_counts);
  EXPECT_EQ(block.op_cycles, step.op_cycles);
  ASSERT_EQ(block.pc_stats.size(), step.pc_stats.size());
  auto it = step.pc_stats.begin();
  for (const auto& [pc, stat] : block.pc_stats) {
    ASSERT_EQ(pc, it->first) << std::hex << pc;
    EXPECT_EQ(stat.count, it->second.count) << std::hex << pc;
    EXPECT_EQ(stat.cycles, it->second.cycles) << std::hex << pc;
    EXPECT_EQ(stat.op, it->second.op) << std::hex << pc;
    ++it;
  }
}

TEST(BlockProfilerTest, AttributionMatchesStepProbeAcrossEncodings) {
  for (const EncodingKind encoding : {EncodingKind::kCsc, EncodingKind::kDelta,
                                      EncodingKind::kMixed, EncodingKind::kBlock}) {
    SCOPED_TRACE(static_cast<int>(encoding));
    testutil::TestModelSpec spec;
    spec.encoding = encoding;
    NeuroCModel model = testutil::MakeTestModel(21, spec);

    // Reference: per-retire probe on the step interpreter.
    DeployedModel stepped = DeployedModel::Deploy(model, Stm32f072rb().ToMachineConfig());
    std::vector<int8_t> input(stepped.input_dim(), 7);
    stepped.machine().cpu().ResetCounters();
    SimProfiler step_profiler;
    {
      ScopedCpuProbe attach(stepped.machine().cpu(), &step_profiler);
      stepped.Predict(input);
    }

    // Same inference profiled without leaving block-compiled execution.
    DeployedModel blocked = DeployedModel::Deploy(model, Stm32f072rb().ToMachineConfig());
    Cpu& cpu = blocked.machine().cpu();
    cpu.EnableDecodeCache(true);
    cpu.EnableBlockCompile(true);
    cpu.ResetCounters();
    PcProfile block_profile;
    {
      BlockProfiler profiler(cpu);
      blocked.Predict(input);
      block_profile = profiler.Collect();
    }

    EXPECT_EQ(block_profile.source, kProfileSourceBlockCounters);
    EXPECT_EQ(step_profiler.profile().source, kProfileSourceStepProbe);
    // Expanded counters must account for every simulated cycle of the window...
    EXPECT_EQ(block_profile.total_cycles, cpu.cycles());
    EXPECT_EQ(block_profile.total_instructions, cpu.instructions());
    // ...and agree with the step probe PC-by-PC.
    ExpectProfilesBitIdentical(block_profile, step_profiler.profile());
  }
}

TEST(BlockProfilerTest, ProfileModesAgreeExceptProvenance) {
  NeuroCModel model = MakeSmallModel(22);
  DeployedModel deployed = DeployedModel::Deploy(model, Stm32f072rb().ToMachineConfig());
  const InferenceProfile legacy = ProfileInferenceDetailed(deployed, 64, ProfileMode::kLegacy);
  const InferenceProfile cached = ProfileInferenceDetailed(deployed, 64, ProfileMode::kCached);
  const InferenceProfile block = ProfileInferenceDetailed(deployed, 64, ProfileMode::kBlock);

  EXPECT_EQ(legacy.mode, ProfileMode::kLegacy);
  EXPECT_EQ(cached.mode, ProfileMode::kCached);
  EXPECT_EQ(block.mode, ProfileMode::kBlock);
  EXPECT_EQ(legacy.attribution.source, kProfileSourceStepProbe);
  EXPECT_EQ(cached.attribution.source, kProfileSourceStepProbe);
  EXPECT_EQ(block.attribution.source, kProfileSourceBlockCounters);

  // The decode path changes how fast the host simulates, never what is simulated.
  EXPECT_EQ(legacy.summary.cycles, block.summary.cycles);
  EXPECT_EQ(legacy.summary.instructions, block.summary.instructions);
  ExpectProfilesBitIdentical(block.attribution, legacy.attribution);
  ExpectProfilesBitIdentical(block.attribution, cached.attribution);
  EXPECT_DOUBLE_EQ(block.energy.total_pj, legacy.energy.total_pj);
}

TEST(BlockProfilerTest, TotalsStayExactWhenInferenceAbortsMidRun) {
  NeuroCModel model = MakeSmallModel(23);
  MachineConfig config = Stm32f072rb().ToMachineConfig();
  DeployedModel full = DeployedModel::Deploy(model, config);
  std::vector<int8_t> input(full.input_dim(), 3);
  full.machine().cpu().ResetCounters();
  full.Predict(input);
  const uint64_t full_instructions = full.machine().cpu().instructions();

  // Cut the instruction budget so the dominant layer kernel overruns it (the budget is
  // per guest call, and layer kernels are called one by one): the fault unwinds out of
  // block execution, and the profiler must still account for every cycle simulated.
  config.max_instructions = full_instructions / 4;
  DeployedModel aborted = DeployedModel::Deploy(model, config);
  Cpu& cpu = aborted.machine().cpu();
  cpu.EnableBlockCompile(true);
  cpu.ResetCounters();
  PcProfile profile;
  {
    BlockProfiler profiler(cpu);
    EXPECT_FALSE(aborted.TryPredict(input).ok());
    profile = profiler.Collect();
  }
  EXPECT_GT(profile.total_cycles, 0u);
  EXPECT_EQ(profile.total_cycles, cpu.cycles());
  EXPECT_EQ(profile.total_instructions, cpu.instructions());
}

// ---------------------------------------------------------------------------
// Profile modes and the SRAM headroom knob
// ---------------------------------------------------------------------------

TEST(ProfileModeTest, ParseAcceptsExactlyTheDocumentedNames) {
  ProfileMode mode = ProfileMode::kBlock;
  EXPECT_TRUE(ParseProfileMode("legacy", &mode));
  EXPECT_EQ(mode, ProfileMode::kLegacy);
  EXPECT_TRUE(ParseProfileMode("cached", &mode));
  EXPECT_EQ(mode, ProfileMode::kCached);
  EXPECT_TRUE(ParseProfileMode("block", &mode));
  EXPECT_EQ(mode, ProfileMode::kBlock);
  EXPECT_FALSE(ParseProfileMode("turbo", &mode));
  EXPECT_FALSE(ParseProfileMode("", &mode));
  EXPECT_EQ(mode, ProfileMode::kBlock);  // untouched on failure

  EXPECT_STREQ(ProfileModeName(ProfileMode::kLegacy), "legacy");
  EXPECT_STREQ(ProfileModeName(ProfileMode::kCached), "cached");
  EXPECT_STREQ(ProfileModeName(ProfileMode::kBlock), "block");
}

TEST(ProfileModeTest, StackHeadroomWarnDefaultsTo256Bytes) {
  // NEUROC_SRAM_HEADROOM is not set in the test environment, so the documented default
  // applies (the parse is cached process-wide, so overriding it here would be racy).
  EXPECT_EQ(StackHeadroomWarnBytes(), 256u);
}

TEST(ProfileModeTest, ProfileJsonRecordsModeAndProfilerProvenance) {
  NeuroCModel model = MakeSmallModel(24);
  DeployedModel deployed = DeployedModel::Deploy(model, Stm32f072rb().ToMachineConfig());
  const InferenceProfile profile =
      ProfileInferenceDetailed(deployed, 64, ProfileMode::kBlock);
  JsonWriter w;
  WriteInferenceProfileJson(w, profile, deployed);
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(w.str(), &doc, &error)) << error;
  ASSERT_NE(doc.Find("mode"), nullptr);
  EXPECT_EQ(doc.Find("mode")->text, "block");
  ASSERT_NE(doc.Find("profiler"), nullptr);
  EXPECT_EQ(doc.Find("profiler")->text, kProfileSourceBlockCounters);
  ASSERT_NE(doc.FindPath("energy.total_pj"), nullptr);
  ASSERT_NE(doc.FindPath("stack.headroom_warn_bytes"), nullptr);
  EXPECT_EQ(doc.FindPath("stack.headroom_warn_bytes")->AsDouble(), 256.0);
}

// ---------------------------------------------------------------------------
// Energy-proxy model
// ---------------------------------------------------------------------------

TEST(EnergyModelTest, EstimateDecomposesExactly) {
  const EnergyModel model = EnergyModel::CortexM0Proxy();
  const std::array<uint64_t, kEnergyClassCount> cycles = {100, 50, 25, 25, 10, 5};
  const EnergyEstimate e = EstimateEnergy(model, cycles, /*flash_reads=*/40,
                                          /*sram_reads=*/30, /*sram_writes=*/20);
  double core = 0.0;
  for (size_t i = 0; i < kEnergyClassCount; ++i) {
    EXPECT_DOUBLE_EQ(e.core_pj[i],
                     static_cast<double>(cycles[i]) * model.core_pj_per_cycle[i]);
    core += e.core_pj[i];
  }
  EXPECT_DOUBLE_EQ(e.core_total_pj, core);
  EXPECT_DOUBLE_EQ(e.flash_pj, 40.0 * model.flash_read_pj);
  EXPECT_DOUBLE_EQ(e.sram_pj, 30.0 * model.sram_read_pj + 20.0 * model.sram_write_pj);
  EXPECT_DOUBLE_EQ(e.total_pj, e.core_total_pj + e.flash_pj + e.sram_pj);
  EXPECT_DOUBLE_EQ(e.total_uj(), e.total_pj * 1e-6);
  EXPECT_GT(e.AvgPowerMw(215, 48e6), 0.0);
  EXPECT_EQ(e.AvgPowerMw(0, 48e6), 0.0);
}

TEST(EnergyModelTest, ProfileEnergyIsRecomputableFromAttribution) {
  NeuroCModel model = MakeSmallModel(25);
  DeployedModel deployed = DeployedModel::Deploy(model, Stm32f072rb().ToMachineConfig());
  const InferenceProfile p = ProfileInferenceDetailed(deployed);
  const std::array<uint64_t, kEnergyClassCount> cycles = {
      p.summary.alu_cycles,    p.summary.multiply_cycles, p.summary.load_cycles,
      p.summary.store_cycles,  p.summary.branch_cycles,   p.summary.stack_cycles};
  const EnergyEstimate recomputed =
      EstimateEnergy(p.energy_model, cycles, p.summary.flash_reads, p.summary.sram_reads,
                     p.summary.sram_writes);
  EXPECT_GT(p.energy.total_pj, 0.0);
  EXPECT_DOUBLE_EQ(p.energy.total_pj, recomputed.total_pj);
  EXPECT_DOUBLE_EQ(p.energy.core_total_pj, recomputed.core_total_pj);
  EXPECT_DOUBLE_EQ(p.energy.total_pj,
                   p.energy.core_total_pj + p.energy.flash_pj + p.energy.sram_pj);
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, JsonIsRegistrationOrderedAndWellFormed) {
  MetricsRegistry reg;
  reg.GetCounter("zeta.count").Add(2);
  reg.GetCounter("alpha.count").Add(3);
  reg.GetGauge("best.accuracy").Set(0.875);
  reg.GetHistogram("latency").Observe(2.0);
  reg.GetHistogram("latency").Observe(4.0);

  JsonWriter w(0);
  reg.WriteJson(w);
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(w.str(), &doc, &error)) << error;
  // Registration order, not lexicographic: zeta registered first stays first.
  const JsonValue* counters = doc.Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_EQ(counters->members.size(), 2u);
  EXPECT_EQ(counters->members[0].first, "zeta.count");
  EXPECT_EQ(counters->members[1].first, "alpha.count");
  EXPECT_EQ(doc.FindPath("counters.zeta.count"), nullptr);  // dotted names are literal keys
  EXPECT_EQ(counters->Find("zeta.count")->AsDouble(), 2.0);
  EXPECT_EQ(doc.Find("gauges")->Find("best.accuracy")->AsDouble(), 0.875);
  const JsonValue* hist = doc.Find("histograms")->Find("latency");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->Find("count")->AsDouble(), 2.0);
  EXPECT_EQ(hist->Find("sum")->AsDouble(), 6.0);
  EXPECT_EQ(hist->Find("min")->AsDouble(), 2.0);
  EXPECT_EQ(hist->Find("max")->AsDouble(), 4.0);
}

TEST(MetricsRegistryTest, CounterAddsFromPoolThreadsSumExactly) {
  testutil::GlobalThreadsGuard guard;
  ThreadPool::SetGlobalThreads(4);
  MetricsRegistry reg;
  MetricsRegistry::Counter& counter = reg.GetCounter("work.items");  // register up front
  ParallelFor(0, 1000, 16, [&](size_t i0, size_t i1) {
    for (size_t i = i0; i < i1; ++i) {
      counter.Add(1);
    }
  });
  EXPECT_EQ(counter.value(), 1000u);
}

TEST(MetricsRegistryTest, ResetZeroesValuesButKeepsRegistration) {
  MetricsRegistry reg;
  reg.GetCounter("c").Add(7);
  reg.GetGauge("g").Set(1.25);
  reg.GetHistogram("h").Observe(3.0);
  reg.Reset();
  EXPECT_EQ(reg.GetCounter("c").value(), 0u);
  EXPECT_EQ(reg.GetGauge("g").value(), 0.0);
  EXPECT_EQ(reg.GetHistogram("h").snapshot().count, 0u);

  JsonWriter w(0);
  reg.WriteJson(w);
  // Names survive a reset (so run records keep a stable schema across campaigns).
  EXPECT_NE(w.str().find("\"c\""), std::string::npos);
  EXPECT_NE(w.str().find("\"h\""), std::string::npos);
}

TEST(MetricsRegistryTest, RunRecordsRoundTripThroughJsonReader) {
  const std::string path = ::testing::TempDir() + "/neuroc_registry_test.jsonl";
  std::remove(path.c_str());
  MetricsRegistry reg;
  reg.GetCounter("fuzz.cases").Add(10);
  reg.GetGauge("search.best_accuracy").Set(0.5);
  ASSERT_TRUE(reg.AppendRunRecord(path, "run_a"));
  reg.GetCounter("fuzz.cases").Add(5);
  ASSERT_TRUE(reg.AppendRunRecord(path, "run_b"));

  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  std::vector<JsonValue> records;
  std::string error;
  ASSERT_TRUE(ParseJsonl(text, &records, &error)) << error;
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].Find("run")->text, "run_a");
  EXPECT_EQ(records[0].Find("counters")->Find("fuzz.cases")->AsDouble(), 10.0);
  EXPECT_EQ(records[1].Find("run")->text, "run_b");
  EXPECT_EQ(records[1].Find("counters")->Find("fuzz.cases")->AsDouble(), 15.0);
  EXPECT_EQ(records[1].Find("gauges")->Find("search.best_accuracy")->AsDouble(), 0.5);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// JSON reader
// ---------------------------------------------------------------------------

TEST(JsonReaderTest, ParsesScalarsContainersAndEscapes) {
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(
      R"({"a":[1,2.5,-3e2],"s":"x\nA","t":true,"nil":null,"o":{"k":"v"}})", &doc,
      &error))
      << error;
  const JsonValue* a = doc.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->elements.size(), 3u);
  EXPECT_EQ(a->elements[2].AsDouble(), -300.0);
  EXPECT_EQ(doc.Find("s")->text, "x\nA");
  EXPECT_TRUE(doc.Find("t")->boolean);
  EXPECT_EQ(doc.Find("nil")->kind, JsonValue::Kind::kNull);
  ASSERT_NE(doc.FindPath("o.k"), nullptr);
  EXPECT_EQ(doc.FindPath("o.k")->text, "v");
  EXPECT_EQ(doc.Find("missing"), nullptr);
}

TEST(JsonReaderTest, RejectsMalformedDocuments) {
  for (const char* bad : {"{", "[1,", "{\"a\":}", "1 2", "\"unterminated", "{'a':1}"}) {
    JsonValue doc;
    std::string error;
    EXPECT_FALSE(ParseJson(bad, &doc, &error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(JsonReaderTest, RoundTripsJsonWriterOutput) {
  const std::string json = ProfileJsonFor(26);
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(json, &doc, &error)) << error;
  EXPECT_EQ(doc.Find("schema")->text, "neuroc.profile.v2");
  ASSERT_NE(doc.FindPath("summary.cycles"), nullptr);
  EXPECT_GT(doc.FindPath("summary.cycles")->AsDouble(), 0.0);
}

TEST(JsonReaderTest, ParseJsonlSkipsBlankLinesAndStopsAtBadRecord) {
  std::vector<JsonValue> records;
  std::string error;
  ASSERT_TRUE(ParseJsonl("{\"a\":1}\n\n{\"b\":2}\n", &records, &error)) << error;
  EXPECT_EQ(records.size(), 2u);
  records.clear();
  EXPECT_FALSE(ParseJsonl("{\"a\":1}\n{bad\n", &records, &error));
  EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------------------
// Trace recorder abort paths
// ---------------------------------------------------------------------------

TEST(TraceTest, JsonStaysWellFormedWhenGuestFaultUnwindsSpans) {
  TraceRecorder rec;
  rec.set_enabled(true);
  rec.Start();
  try {
    TraceRecorder::Span outer(rec, "inference");
    TraceRecorder::Span inner(rec, "layer_1");
    throw GuestFault{ErrorCode::kUnmappedAccess, "synthetic fault", 0x2000'4000};
  } catch (const GuestFault&) {
    // The abort path a budget overrun / guest fault takes: spans close via unwinding.
  }
  EXPECT_EQ(rec.event_count(), 2u);
  const std::string json = rec.ToChromeTraceJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("layer_1"), std::string::npos);
}

TEST(TraceTest, SerializingWithASpanStillOpenIsWellFormed) {
  TraceRecorder rec;
  rec.set_enabled(true);
  rec.Start();
  TraceRecorder::Span open(rec, "still_running");
  rec.AddCompleteEvent("done", "sim", 0.0, 10.0);
  // A trace written from a fault handler while outer spans are still alive must be
  // loadable; the open span simply is not in it yet.
  const std::string json = rec.ToChromeTraceJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_EQ(json.find("still_running"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Log-level env parsing
// ---------------------------------------------------------------------------

TEST(LoggingTest, ParseLogLevelAcceptsKnownNames) {
  LogLevel level = LogLevel::kInfo;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("WARN", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(ParseLogLevel("warning", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(ParseLogLevel("Error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_TRUE(ParseLogLevel("info", &level));
  EXPECT_EQ(level, LogLevel::kInfo);

  level = LogLevel::kError;
  EXPECT_FALSE(ParseLogLevel(nullptr, &level));
  EXPECT_FALSE(ParseLogLevel("", &level));
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_EQ(level, LogLevel::kError);  // untouched on failure
}

}  // namespace
}  // namespace neuroc
