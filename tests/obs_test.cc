// Observability subsystem tests (ctest -L obs): the cycle-exact sim profiler and its
// acceptance invariants (exact attribution, determinism, zero overhead when disabled), the
// host trace/metrics layer, and the shared JSON writer.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "src/common/logging.h"
#include "src/common/thread_pool.h"
#include "src/core/synthetic.h"
#include "src/obs/json_writer.h"
#include "src/obs/metrics.h"
#include "src/obs/sim_profiler.h"
#include "tests/test_util.h"
#include "src/obs/trace.h"
#include "src/runtime/deployed_model.h"
#include "src/runtime/platform.h"
#include "src/runtime/profile.h"

namespace neuroc {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON syntax checker (no parsing, just well-formedness) for validating the
// writer/trace output without adding a JSON dependency.
// ---------------------------------------------------------------------------

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view s) : s_(s) {}

  bool Valid() {
    SkipWs();
    if (!Value()) {
      return false;
    }
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
                                s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool Literal(std::string_view lit) {
    if (s_.compare(pos_, lit.size(), lit) != 0) {
      return false;
    }
    pos_ += lit.size();
    return true;
  }
  bool String() {
    if (pos_ >= s_.size() || s_[pos_] != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) {
          return false;
        }
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) {
      return false;
    }
    ++pos_;  // closing quote
    return true;
  }
  bool Number() {
    const size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < s_.size() && (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                                s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Value() {
    SkipWs();
    if (pos_ >= s_.size()) {
      return false;
    }
    switch (s_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }
  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!String()) {
        return false;
      }
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] != ':') {
        return false;
      }
      ++pos_;
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (pos_ < s_.size() && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    if (pos_ >= s_.size() || s_[pos_] != '}') {
      return false;
    }
    ++pos_;
    return true;
  }
  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (pos_ < s_.size() && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    if (pos_ >= s_.size() || s_[pos_] != ']') {
      return false;
    }
    ++pos_;
    return true;
  }

  std::string_view s_;
  size_t pos_ = 0;
};

NeuroCModel MakeSmallModel(uint64_t seed) { return testutil::MakeTestModel(seed); }

std::string ProfileJsonFor(uint64_t seed) {
  NeuroCModel model = MakeSmallModel(seed);
  DeployedModel deployed = DeployedModel::Deploy(model, Stm32f072rb().ToMachineConfig());
  const InferenceProfile profile = ProfileInferenceDetailed(deployed);
  JsonWriter w;
  WriteInferenceProfileJson(w, profile, deployed);
  return w.str();
}

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

TEST(JsonWriterTest, NestedDocumentIsWellFormed) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name").Value("bench \"quoted\"\n");
  w.Key("count").Value(static_cast<uint64_t>(42));
  w.Key("negative").Value(static_cast<int64_t>(-7));
  w.Key("ratio").Value(0.25);
  w.Key("flag").Value(true);
  w.Key("items").BeginArray();
  w.Value(1).Value(2).Value(3);
  w.BeginObject().Key("inner").Value("x").EndObject();
  w.EndArray();
  w.EndObject();
  ASSERT_TRUE(w.done());
  EXPECT_TRUE(JsonChecker(w.str()).Valid()) << w.str();
  EXPECT_NE(w.str().find("\"bench \\\"quoted\\\"\\n\""), std::string::npos);
}

TEST(JsonWriterTest, CompactModeHasNoNewlines) {
  JsonWriter w(0);
  w.BeginObject();
  w.Key("a").Value(1);
  w.Key("b").BeginArray().Value(2).Value(3).EndArray();
  w.EndObject();
  EXPECT_EQ(w.str().find('\n'), std::string::npos);
  EXPECT_TRUE(JsonChecker(w.str()).Valid()) << w.str();
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w(0);
  w.BeginArray();
  w.Value(std::numeric_limits<double>::infinity());
  w.Value(std::numeric_limits<double>::quiet_NaN());
  w.EndArray();
  EXPECT_EQ(w.str(), "[null,null]");
}

TEST(JsonWriterTest, EscapeHandlesControlChars) {
  EXPECT_EQ(JsonWriter::Escape("a\tb"), "a\\tb");
  EXPECT_EQ(JsonWriter::Escape(std::string_view("\x01", 1)), "\\u0001");
  EXPECT_EQ(JsonWriter::Escape("back\\slash"), "back\\\\slash");
}

// ---------------------------------------------------------------------------
// SymbolTable
// ---------------------------------------------------------------------------

TEST(SymbolTableTest, ResolveFindsGreatestEntryAtOrBelow) {
  std::map<std::string, uint32_t> symbols = {
      {"kern_a", 0x100}, {"loop_a", 0x120}, {"kern_b", 0x200}};
  SymbolTable table(symbols);
  EXPECT_EQ(table.Resolve(0x0FF), nullptr);
  ASSERT_NE(table.Resolve(0x100), nullptr);
  EXPECT_EQ(table.Resolve(0x100)->name, "kern_a");
  EXPECT_EQ(table.Resolve(0x11F)->name, "kern_a");
  EXPECT_EQ(table.Resolve(0x120)->name, "loop_a");
  EXPECT_EQ(table.Resolve(0x5000)->name, "kern_b");
}

TEST(SymbolTableTest, SameAddressLabelsJoin) {
  std::map<std::string, uint32_t> symbols = {
      {"alias_z", 0x100}, {"entry_a", 0x100}, {"other", 0x80}};
  SymbolTable table(symbols);
  ASSERT_EQ(table.entries().size(), 2u);
  EXPECT_EQ(table.Resolve(0x100)->name, "alias_z/entry_a");
}

// ---------------------------------------------------------------------------
// Profiler acceptance invariants
// ---------------------------------------------------------------------------

TEST(SimProfilerTest, PerPcCyclesSumToCpuCycles) {
  NeuroCModel model = MakeSmallModel(3);
  DeployedModel deployed = DeployedModel::Deploy(model, Stm32f072rb().ToMachineConfig());
  deployed.machine().cpu().ResetCounters();
  SimProfiler profiler;
  std::vector<int8_t> input(deployed.input_dim(), 5);
  {
    ScopedCpuProbe attach(deployed.machine().cpu(), &profiler);
    deployed.Predict(input);
  }
  EXPECT_EQ(profiler.total_cycles(), deployed.machine().cpu().cycles());
  EXPECT_EQ(profiler.total_instructions(), deployed.machine().cpu().instructions());

  uint64_t pc_cycle_sum = 0;
  for (const auto& [pc, stat] : profiler.pc_stats()) {
    pc_cycle_sum += stat.cycles;
  }
  EXPECT_EQ(pc_cycle_sum, profiler.total_cycles());
}

TEST(SimProfilerTest, HotspotCyclesSumToTotalExactly) {
  NeuroCModel model = MakeSmallModel(4);
  DeployedModel deployed = DeployedModel::Deploy(model, Stm32f072rb().ToMachineConfig());
  const InferenceProfile profile = ProfileInferenceDetailed(deployed);

  EXPECT_EQ(profile.hotspots.total_cycles, profile.summary.cycles);
  uint64_t symbol_cycles = 0;
  uint64_t symbol_instructions = 0;
  for (const SymbolHotspot& s : profile.hotspots.symbols) {
    symbol_cycles += s.cycles;
    symbol_instructions += s.instructions;
  }
  EXPECT_EQ(symbol_cycles, profile.summary.cycles);
  EXPECT_EQ(symbol_instructions, profile.summary.instructions);
  EXPECT_FALSE(profile.hotspots.symbols.empty());
  // Real kernels ran, so named symbols (not just "(unattributed)") must appear.
  bool named = false;
  for (const SymbolHotspot& s : profile.hotspots.symbols) {
    named |= s.name != "(unattributed)";
  }
  EXPECT_TRUE(named);
}

TEST(SimProfilerTest, CategoryCyclesSumToTotal) {
  NeuroCModel model = MakeSmallModel(5);
  DeployedModel deployed = DeployedModel::Deploy(model, Stm32f072rb().ToMachineConfig());
  const ExecutionProfile p = ProfileInference(deployed);
  EXPECT_GT(p.cycles, 0u);
  EXPECT_EQ(p.load_cycles + p.store_cycles + p.alu_cycles + p.multiply_cycles +
                p.branch_cycles + p.stack_cycles,
            p.cycles);
  EXPECT_EQ(p.loads + p.stores + p.alu + p.multiplies + p.branches + p.stack_ops,
            p.instructions);
}

TEST(SimProfilerTest, AttachingProbeDoesNotChangeSimulatedCounts) {
  NeuroCModel model = MakeSmallModel(6);
  std::vector<int8_t> input(64, 3);

  DeployedModel plain = DeployedModel::Deploy(model, Stm32f072rb().ToMachineConfig());
  plain.machine().cpu().ResetCounters();
  plain.Predict(input);
  const uint64_t cycles_plain = plain.machine().cpu().cycles();
  const uint64_t instructions_plain = plain.machine().cpu().instructions();

  DeployedModel probed = DeployedModel::Deploy(model, Stm32f072rb().ToMachineConfig());
  probed.machine().cpu().ResetCounters();
  SimProfiler profiler;
  {
    ScopedCpuProbe attach(probed.machine().cpu(), &profiler);
    probed.Predict(input);
  }
  EXPECT_EQ(probed.machine().cpu().cycles(), cycles_plain);
  EXPECT_EQ(probed.machine().cpu().instructions(), instructions_plain);
  EXPECT_EQ(profiler.total_cycles(), cycles_plain);
}

TEST(SimProfilerTest, ProfileJsonIsDeterministic) {
  const std::string a = ProfileJsonFor(11);
  const std::string b = ProfileJsonFor(11);
  EXPECT_EQ(a, b);  // byte-identical
  EXPECT_TRUE(JsonChecker(a).Valid());
  EXPECT_NE(a.find("\"schema\""), std::string::npos);
  EXPECT_NE(a.find("\"hotspots\""), std::string::npos);
}

TEST(SimProfilerTest, FormattedReportMentionsSymbolsAndStack) {
  NeuroCModel model = MakeSmallModel(12);
  DeployedModel deployed = DeployedModel::Deploy(model, Stm32f072rb().ToMachineConfig());
  const InferenceProfile profile = ProfileInferenceDetailed(deployed);
  const std::string text = FormatInferenceProfile(profile, deployed);
  EXPECT_NE(text.find("hotspots"), std::string::npos);
  EXPECT_NE(text.find("stack high water"), std::string::npos);
  EXPECT_NE(text.find("per-layer cycles"), std::string::npos);

  const std::string annotated =
      FormatInferenceProfile(profile, deployed, /*annotated_disassembly=*/true);
  EXPECT_GT(annotated.size(), text.size());
}

// ---------------------------------------------------------------------------
// Memory observability
// ---------------------------------------------------------------------------

TEST(MemObservabilityTest, HeatmapTotalsMatchAccessStats) {
  NeuroCModel model = MakeSmallModel(13);
  DeployedModel deployed = DeployedModel::Deploy(model, Stm32f072rb().ToMachineConfig());
  MemoryMap& mem = deployed.machine().memory();
  mem.ResetStats();
  mem.EnableHeatmap(64);
  std::vector<int8_t> input(deployed.input_dim(), 1);
  deployed.Predict(input);
  const MemHeatmap& hm = mem.heatmap();
  const auto sum = [](const std::vector<uint64_t>& v) {
    uint64_t s = 0;
    for (uint64_t x : v) {
      s += x;
    }
    return s;
  };
  EXPECT_EQ(sum(hm.flash_reads), mem.stats().flash_reads);
  EXPECT_EQ(sum(hm.sram_reads), mem.stats().sram_reads);
  EXPECT_EQ(sum(hm.sram_writes), mem.stats().sram_writes);
  mem.DisableHeatmap();
  EXPECT_EQ(mem.heatmap().bucket_bytes, 0u);
}

TEST(MemObservabilityTest, StackWatchSeesStackButNotActivations) {
  NeuroCModel model = MakeSmallModel(14);
  DeployedModel deployed = DeployedModel::Deploy(model, Stm32f072rb().ToMachineConfig());
  const InferenceProfile profile = ProfileInferenceDetailed(deployed);
  const MachineConfig& cfg = deployed.machine().config();
  // Kernels push/pop, so some stack is used; and it must fit inside SRAM above the
  // activation buffers.
  EXPECT_GT(profile.stack_bytes_used, 0u);
  EXPECT_LT(profile.stack_bytes_used, cfg.ram_size);
  EXPECT_EQ(profile.stack_bytes_used + profile.stack_headroom_bytes +
                (deployed.activation_top_addr() - cfg.ram_base),
            cfg.ram_size);
}

// ---------------------------------------------------------------------------
// Trace recorder
// ---------------------------------------------------------------------------

TEST(TraceTest, ChromeTraceJsonIsWellFormed) {
  TraceRecorder rec;
  rec.set_enabled(true);
  rec.Start();
  {
    TraceRecorder::Span outer(rec, "outer \"span\"");
    TraceRecorder::Span inner(rec, "inner");
  }
  rec.Counter("loss", 0.5);
  rec.AddCompleteEvent("layer_0", "sim", 0.0, 125.0);
  const std::string json = rec.ToChromeTraceJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_EQ(rec.event_count(), 4u);
}

TEST(TraceTest, SpansFromPoolThreadsAreRecorded) {
  TraceRecorder rec;
  rec.set_enabled(true);
  rec.Start();
  ParallelFor(0, 64, 1, [&](size_t i0, size_t i1) {
    for (size_t i = i0; i < i1; ++i) {
      TraceRecorder::Span span(rec, "chunk");
    }
  });
  EXPECT_EQ(rec.event_count(), 64u);
  EXPECT_TRUE(JsonChecker(rec.ToChromeTraceJson()).Valid());
}

TEST(TraceTest, DisabledRecorderRecordsNothing) {
  TraceRecorder rec;
  ASSERT_FALSE(rec.enabled());
  {
    TraceRecorder::Span span(rec, "ignored");
  }
  rec.Counter("ignored", 1.0);
  EXPECT_EQ(rec.event_count(), 0u);
}

// ---------------------------------------------------------------------------
// Metrics logger
// ---------------------------------------------------------------------------

TEST(MetricsLoggerTest, WritesOneWellFormedJsonObjectPerLine) {
  const std::string path = ::testing::TempDir() + "/neuroc_metrics_test.jsonl";
  std::remove(path.c_str());
  {
    MetricsLogger logger(path);
    ASSERT_TRUE(logger.ok());
    logger.Log({{"epoch", 1}, {"loss", 0.75}, {"note", std::string_view("first")}});
    logger.Log({{"epoch", 2}, {"loss", 0.5}});
  }
  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_TRUE(JsonChecker(line).Valid()) << line;
    EXPECT_EQ(line.front(), '{');
  }
  EXPECT_EQ(lines, 2);
  std::remove(path.c_str());
}

TEST(MetricsLoggerTest, EmptyPathIsNoOp) {
  MetricsLogger logger("");
  EXPECT_FALSE(logger.ok());
  logger.Log({{"epoch", 1}});  // must not crash
}

// ---------------------------------------------------------------------------
// Log-level env parsing
// ---------------------------------------------------------------------------

TEST(LoggingTest, ParseLogLevelAcceptsKnownNames) {
  LogLevel level = LogLevel::kInfo;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("WARN", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(ParseLogLevel("warning", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(ParseLogLevel("Error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_TRUE(ParseLogLevel("info", &level));
  EXPECT_EQ(level, LogLevel::kInfo);

  level = LogLevel::kError;
  EXPECT_FALSE(ParseLogLevel(nullptr, &level));
  EXPECT_FALSE(ParseLogLevel("", &level));
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_EQ(level, LogLevel::kError);  // untouched on failure
}

}  // namespace
}  // namespace neuroc
