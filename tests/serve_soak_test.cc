// Concurrency soak for the serving layer: N tenants x M in-flight requests per tenant
// over real socketpair connections with seeded arrival jitter, against the live
// dispatcher thread and a cache smaller than the model set (so eviction/reload churns
// under load). Run under TSan in CI (the dedicated tsan job) — the assertions here are
// deliberately coarse (everything answered, every answer correct); the interesting
// property is that no data race, deadlock or lost completion shows up while the
// scheduler, cache and connections all contend.

#include <sys/socket.h>

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/serve/server.h"
#include "src/serve/service.h"
#include "tests/test_util.h"

namespace neuroc {
namespace {

using testutil::FakeClient;
using testutil::MakeTestModel;
using testutil::TestModelSpec;

constexpr size_t kInDim = 16;
constexpr size_t kTenants = 4;       // one connection per tenant
constexpr size_t kPerTenant = 24;    // requests per tenant
constexpr size_t kModels = 3;
constexpr size_t kCacheCapacity = 2; // < kModels: eviction churns throughout

TestModelSpec SmallSpec() {
  TestModelSpec spec;
  spec.dims = {kInDim, 12, 10};
  spec.density = 0.3;
  return spec;
}

TEST(ServeSoakTest, ManyTenantsManyInFlightAllAnsweredCorrectly) {
  ServeConfig cfg;
  cfg.max_batch = 4;
  cfg.cache_capacity = kCacheCapacity;
  std::map<std::string, uint64_t> seeds;
  for (size_t m = 0; m < kModels; ++m) {
    seeds["m" + std::to_string(m)] = 300 + m;
  }
  InferenceService service(cfg, [seeds](const std::string& name) -> StatusOr<NeuroCModel> {
    const auto it = seeds.find(name);
    if (it == seeds.end()) {
      return Status(ErrorCode::kIoError, "no such model: " + name);
    }
    return MakeTestModel(it->second, SmallSpec());
  });
  service.Start();
  FrameServer server(&service);

  std::vector<NeuroCModel> hosts;
  for (size_t m = 0; m < kModels; ++m) {
    hosts.push_back(MakeTestModel(300 + m, SmallSpec()));
  }

  std::atomic<size_t> answered{0};
  std::atomic<size_t> wrong{0};
  std::vector<std::thread> tenants;
  for (size_t t = 0; t < kTenants; ++t) {
    tenants.emplace_back([&, t] {
      int fds[2];
      ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
      server.AddConnection(fds[0]);
      FakeClient client(fds[1]);
      Rng rng(7000 + t);  // seeded jitter: this tenant's schedule replays identically

      std::map<uint64_t, std::pair<size_t, std::vector<int8_t>>> in_flight;
      for (size_t i = 0; i < kPerTenant; ++i) {
        const size_t model = rng.NextBounded(kModels);
        ServeRequest req;
        req.request_id = t * 1000 + i;
        req.tenant = "tenant" + std::to_string(t);
        req.model = "m" + std::to_string(model);
        req.input.resize(kInDim);
        for (int8_t& v : req.input) {
          v = static_cast<int8_t>(rng.NextInt(-128, 127));
        }
        in_flight[req.request_id] = {model, req.input};
        ASSERT_TRUE(client.SendRequest(req));
        if (rng.NextBool(0.3)) {
          std::this_thread::sleep_for(std::chrono::microseconds(rng.NextBounded(200)));
        }
      }
      // Drain all responses for this connection; order is completion order.
      for (size_t i = 0; i < kPerTenant; ++i) {
        const StatusOr<ServeResponse> resp = client.ReadResponse(/*timeout_ms=*/60000);
        ASSERT_TRUE(resp.ok()) << resp.status().ToString();
        ASSERT_TRUE(resp->ok()) << resp->message;
        const auto it = in_flight.find(resp->request_id);
        ASSERT_NE(it, in_flight.end());
        const auto& [model, input] = it->second;
        if (resp->prediction != hosts[model].Predict(input)) {
          ++wrong;
        }
        in_flight.erase(it);
        ++answered;
      }
      EXPECT_TRUE(in_flight.empty());
    });
  }
  for (std::thread& t : tenants) {
    t.join();
  }

  EXPECT_EQ(answered.load(), kTenants * kPerTenant);
  EXPECT_EQ(wrong.load(), 0u);

  server.Stop();
  service.Stop();
}

}  // namespace
}  // namespace neuroc
