#include <gtest/gtest.h>

#include <cmath>

#include "src/data/synth.h"
#include "src/tensor/matrix_ops.h"
#include "src/train/layers.h"
#include "src/train/loss.h"
#include "src/train/network.h"
#include "src/train/neuroc_layer.h"
#include "src/train/optimizer.h"
#include "src/train/ternary.h"
#include "src/train/trainer.h"

namespace neuroc {
namespace {

Tensor RandomBatch(size_t n, size_t d, Rng& rng) {
  Tensor t({n, d});
  for (float& v : t.flat()) {
    v = rng.NextUniform(-1.0f, 1.0f);
  }
  return t;
}

// Scalar loss used for gradient checks: sum of squares of the module output.
// Training-mode forward: Backward requires the activation caches a training forward fills.
float HalfSquaredOutput(Module& m, const Tensor& x, Tensor* grad_out = nullptr) {
  const Tensor& y = m.Forward(x, /*training=*/true);
  float loss = 0.0f;
  for (float v : y.flat()) {
    loss += 0.5f * v * v;
  }
  if (grad_out != nullptr) {
    *grad_out = y;  // d(0.5 y^2)/dy = y
  }
  return loss;
}

// Numerically checks the analytic gradient of one parameter tensor.
void CheckParamGradient(Module& m, const Tensor& x, const ParamRef& param,
                        float tolerance = 2e-2f) {
  Tensor grad_out;
  HalfSquaredOutput(m, x, &grad_out);
  m.Backward(grad_out);
  Tensor analytic = *param.grad;
  const float eps = 1e-3f;
  size_t checked = 0;
  for (size_t i = 0; i < param.value->size() && checked < 24; i += 1 + param.value->size() / 24) {
    float& w = (*param.value)[i];
    const float orig = w;
    w = orig + eps;
    const float lp = HalfSquaredOutput(m, x);
    w = orig - eps;
    const float lm = HalfSquaredOutput(m, x);
    w = orig;
    const float numeric = (lp - lm) / (2.0f * eps);
    EXPECT_NEAR(analytic[i], numeric, tolerance * std::max(1.0f, std::fabs(numeric)))
        << param.name << " index " << i;
    ++checked;
  }
}

TEST(DenseLayerTest, ForwardMatchesManualComputation) {
  Rng rng(1);
  DenseLayer layer(2, 2, rng);
  Tensor x = Tensor::FromData(1, 2, {1.0f, 2.0f});
  const Tensor& y = layer.Forward(x, false);
  const Tensor& w = layer.weights();
  EXPECT_NEAR(y.at(0, 0), w.at(0, 0) + 2.0f * w.at(1, 0), 1e-5f);
  EXPECT_NEAR(y.at(0, 1), w.at(0, 1) + 2.0f * w.at(1, 1), 1e-5f);
}

TEST(DenseLayerTest, GradientCheck) {
  Rng rng(2);
  DenseLayer layer(5, 4, rng);
  Tensor x = RandomBatch(3, 5, rng);
  std::vector<ParamRef> params;
  layer.CollectParams(params);
  for (const ParamRef& p : params) {
    CheckParamGradient(layer, x, p);
  }
}

TEST(DenseLayerTest, InputGradientCheck) {
  Rng rng(3);
  DenseLayer layer(4, 3, rng);
  Tensor x = RandomBatch(2, 4, rng);
  Tensor grad_out;
  HalfSquaredOutput(layer, x, &grad_out);
  const Tensor analytic = layer.Backward(grad_out);
  const float eps = 1e-3f;
  for (size_t i = 0; i < x.size(); ++i) {
    const float orig = x[i];
    x[i] = orig + eps;
    const float lp = HalfSquaredOutput(layer, x);
    x[i] = orig - eps;
    const float lm = HalfSquaredOutput(layer, x);
    x[i] = orig;
    EXPECT_NEAR(analytic[i], (lp - lm) / (2 * eps), 2e-2f);
  }
}

TEST(ReluLayerTest, ForwardAndBackward) {
  ReluLayer relu;
  Tensor x = Tensor::FromData(1, 4, {-1.0f, 0.0f, 2.0f, -0.5f});
  const Tensor& y = relu.Forward(x, false);
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[2], 2.0f);
  Tensor g = Tensor::FromData(1, 4, {1, 1, 1, 1});
  const Tensor& gx = relu.Backward(g);
  EXPECT_EQ(gx[0], 0.0f);
  EXPECT_EQ(gx[2], 1.0f);
}

TEST(DropoutLayerTest, InferenceIsIdentity) {
  Rng rng(4);
  DropoutLayer drop(0.5f, rng);
  Tensor x = RandomBatch(2, 8, rng);
  const Tensor& y = drop.Forward(x, /*training=*/false);
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(y[i], x[i]);
  }
}

TEST(DropoutLayerTest, TrainingZeroesApproxRateFraction) {
  Rng rng(5);
  DropoutLayer drop(0.5f, rng);
  Tensor x({10, 100});
  x.Fill(1.0f);
  const Tensor& y = drop.Forward(x, /*training=*/true);
  size_t zeros = 0;
  for (float v : y.flat()) {
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(v, 2.0f, 1e-5f);  // inverted dropout scaling 1/(1-rate)
    }
  }
  const double frac = static_cast<double>(zeros) / static_cast<double>(y.size());
  EXPECT_NEAR(frac, 0.5, 0.07);
}

TEST(BatchNormTest, NormalizesTrainingBatch) {
  BatchNorm1dLayer bn(3);
  Rng rng(6);
  Tensor x({64, 3});
  for (size_t r = 0; r < 64; ++r) {
    x.at(r, 0) = rng.NextGaussian(5.0f, 2.0f);
    x.at(r, 1) = rng.NextGaussian(-1.0f, 0.5f);
    x.at(r, 2) = rng.NextGaussian(0.0f, 3.0f);
  }
  const Tensor& y = bn.Forward(x, /*training=*/true);
  for (size_t c = 0; c < 3; ++c) {
    double mean = 0.0, var = 0.0;
    for (size_t r = 0; r < 64; ++r) {
      mean += y.at(r, c);
    }
    mean /= 64;
    for (size_t r = 0; r < 64; ++r) {
      var += (y.at(r, c) - mean) * (y.at(r, c) - mean);
    }
    var /= 64;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(BatchNormTest, GradientCheck) {
  BatchNorm1dLayer bn(4);
  Rng rng(7);
  Tensor x = RandomBatch(8, 4, rng);
  // Warm the layer so gamma/beta are exercised at non-default values.
  std::vector<ParamRef> params;
  bn.CollectParams(params);
  (*params[0].value)[1] = 1.3f;
  (*params[1].value)[2] = -0.4f;
  // Gradient-check in training mode requires batch statistics; use a fixed wrapper.
  Tensor grad_out;
  const Tensor& y = bn.Forward(x, true);
  grad_out = y;
  bn.Backward(grad_out);
  const Tensor analytic_gamma = *params[0].grad;
  const float eps = 1e-3f;
  for (size_t i = 0; i < 4; ++i) {
    float& g = (*params[0].value)[i];
    const float orig = g;
    auto loss_at = [&](float val) {
      g = val;
      const Tensor& out = bn.Forward(x, true);
      float l = 0.0f;
      for (float v : out.flat()) {
        l += 0.5f * v * v;
      }
      return l;
    };
    const float lp = loss_at(orig + eps);
    const float lm = loss_at(orig - eps);
    g = orig;
    EXPECT_NEAR(analytic_gamma[i], (lp - lm) / (2 * eps), 2e-2f * std::max(1.0f, analytic_gamma[i]));
  }
}

TEST(TernaryTest, TernarizeRespectsThreshold) {
  Tensor w = Tensor::FromData(1, 5, {-0.9f, -0.1f, 0.0f, 0.2f, 0.8f});
  Tensor out;
  Ternarize(w, 0.5f, out);
  EXPECT_EQ(out[0], -1.0f);
  EXPECT_EQ(out[1], 0.0f);
  EXPECT_EQ(out[2], 0.0f);
  EXPECT_EQ(out[3], 0.0f);
  EXPECT_EQ(out[4], 1.0f);
}

TEST(TernaryTest, ThresholdScalesWithMeanAbs) {
  Tensor w = Tensor::FromData(1, 4, {1.0f, -1.0f, 1.0f, -1.0f});
  TernaryConfig cfg;
  cfg.target_density = 0.0f;  // classic TWN threshold mode
  EXPECT_NEAR(TernaryThreshold(w, cfg), 0.7f, 1e-6f);
}

TEST(TernaryTest, TargetDensityControlsSparsity) {
  Rng rng(77);
  Tensor w({64, 64});
  for (float& v : w.flat()) {
    v = rng.NextGaussian(0.0f, 1.0f);
  }
  for (float density : {0.05f, 0.2f, 0.5f}) {
    TernaryConfig cfg;
    cfg.target_density = density;
    const float t = TernaryThreshold(w, cfg);
    const double actual =
        static_cast<double>(CountNonZero(w, t)) / static_cast<double>(w.size());
    EXPECT_NEAR(actual, density, 0.02) << "density " << density;
  }
}

TEST(TernaryTest, SteClipZeroesLargeLatents) {
  Tensor w = Tensor::FromData(1, 3, {0.5f, 1.5f, -2.0f});
  Tensor g = Tensor::FromData(1, 3, {1.0f, 1.0f, 1.0f});
  ApplySteClip(w, 1.0f, g);
  EXPECT_EQ(g[0], 1.0f);
  EXPECT_EQ(g[1], 0.0f);
  EXPECT_EQ(g[2], 0.0f);
}

TEST(TernaryTest, CountNonZeroMatchesTernarize) {
  Rng rng(8);
  Tensor w({16, 16});
  for (float& v : w.flat()) {
    v = rng.NextGaussian(0.0f, 1.0f);
  }
  const float t = 0.4f;
  Tensor tern;
  Ternarize(w, t, tern);
  size_t nnz = 0;
  for (float v : tern.flat()) {
    if (v != 0.0f) {
      ++nnz;
    }
  }
  EXPECT_EQ(CountNonZero(w, t), nnz);
}

TEST(NeuroCLayerTest, ForwardMatchesManualTernaryComputation) {
  Rng rng(9);
  NeuroCLayer layer(6, 3, rng);
  Tensor x = RandomBatch(2, 6, rng);
  const Tensor& y = layer.Forward(x, false);
  const Tensor& a = layer.Adjacency();
  for (size_t r = 0; r < 2; ++r) {
    for (size_t j = 0; j < 3; ++j) {
      float z = 0.0f;
      for (size_t i = 0; i < 6; ++i) {
        z += x.at(r, i) * a.at(i, j);
      }
      const float expected = z * layer.scale()[j] + layer.bias()[j];
      EXPECT_NEAR(y.at(r, j), expected, 1e-5f);
    }
  }
}

TEST(NeuroCLayerTest, ScaleAndBiasGradientCheck) {
  // The latent gradient is a straight-through estimate (not checkable numerically), but the
  // scale and bias gradients are exact given a fixed adjacency — verify them.
  Rng rng(10);
  NeuroCLayer layer(8, 4, rng);
  Tensor x = RandomBatch(3, 8, rng);
  std::vector<ParamRef> params;
  layer.CollectParams(params);
  for (const ParamRef& p : params) {
    if (p.name.find(".latent") != std::string::npos) {
      continue;
    }
    CheckParamGradient(layer, x, p);
  }
}

TEST(NeuroCLayerTest, TnnVariantHasNoScaleParam) {
  Rng rng(11);
  NeuroCLayerConfig cfg;
  cfg.use_per_neuron_scale = false;
  NeuroCLayer layer(8, 4, rng, cfg);
  std::vector<ParamRef> params;
  layer.CollectParams(params);
  for (const ParamRef& p : params) {
    EXPECT_EQ(p.name.find(".scale"), std::string::npos);
  }
  EXPECT_EQ(layer.Name().substr(0, 3), "tnn");
}

TEST(NeuroCLayerTest, DeployedParameterCountTracksSparsity) {
  Rng rng(12);
  NeuroCLayer layer(32, 16, rng);
  const size_t nnz = layer.NonZeroCount();
  EXPECT_EQ(layer.DeployedParameterCount(), nnz + 2 * 16);
  EXPECT_GT(nnz, 0u);
  EXPECT_LT(nnz, 32u * 16u);  // threshold should zero a meaningful fraction
}

class FixedAdjacencyStrategyTest : public ::testing::TestWithParam<AdjacencyStrategy> {};

TEST_P(FixedAdjacencyStrategyTest, BuildsTernaryAdjacency) {
  Rng rng(13);
  FixedAdjacencyConfig cfg;
  cfg.strategy = GetParam();
  cfg.density = 0.2;
  cfg.fan_in = 8;
  cfg.image_width = 8;
  FixedAdjacencyLayer layer(64, 10, rng, cfg);
  size_t nnz = 0;
  for (float v : layer.adjacency().flat()) {
    EXPECT_TRUE(v == 0.0f || v == 1.0f || v == -1.0f);
    if (v != 0.0f) {
      ++nnz;
    }
  }
  EXPECT_GT(nnz, 0u);
  EXPECT_EQ(layer.NonZeroCount(), nnz);
}

TEST_P(FixedAdjacencyStrategyTest, GradientsFlowToScaleAndBias) {
  Rng rng(14);
  FixedAdjacencyConfig cfg;
  cfg.strategy = GetParam();
  cfg.density = 0.3;
  cfg.fan_in = 6;
  cfg.image_width = 4;
  FixedAdjacencyLayer layer(16, 5, rng, cfg);
  Tensor x = RandomBatch(2, 16, rng);
  std::vector<ParamRef> params;
  layer.CollectParams(params);
  for (const ParamRef& p : params) {
    CheckParamGradient(layer, x, p);
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, FixedAdjacencyStrategyTest,
                         ::testing::Values(AdjacencyStrategy::kRandom,
                                           AdjacencyStrategy::kConstrainedRandom,
                                           AdjacencyStrategy::kSpatialLocal));

TEST(FixedAdjacencyTest, ConstrainedRandomHasExactFanIn) {
  Rng rng(15);
  FixedAdjacencyConfig cfg;
  cfg.strategy = AdjacencyStrategy::kConstrainedRandom;
  cfg.fan_in = 7;
  FixedAdjacencyLayer layer(32, 9, rng, cfg);
  const Tensor& a = layer.adjacency();
  for (size_t j = 0; j < 9; ++j) {
    size_t fan = 0;
    for (size_t i = 0; i < 32; ++i) {
      if (a.at(i, j) != 0.0f) {
        ++fan;
      }
    }
    EXPECT_EQ(fan, 7u);
  }
}

TEST(LossTest, SoftmaxCrossEntropyKnownValue) {
  Tensor logits = Tensor::FromData(1, 2, {0.0f, 0.0f});
  std::vector<int> labels{0};
  const float loss = SoftmaxCrossEntropy(logits, labels, nullptr);
  EXPECT_NEAR(loss, std::log(2.0f), 1e-5f);
}

TEST(LossTest, GradientMatchesNumeric) {
  Rng rng(16);
  Tensor logits = RandomBatch(4, 5, rng);
  std::vector<int> labels{0, 2, 4, 1};
  Tensor grad;
  SoftmaxCrossEntropy(logits, labels, &grad);
  const float eps = 1e-3f;
  for (size_t i = 0; i < logits.size(); ++i) {
    const float orig = logits[i];
    logits[i] = orig + eps;
    const float lp = SoftmaxCrossEntropy(logits, labels, nullptr);
    logits[i] = orig - eps;
    const float lm = SoftmaxCrossEntropy(logits, labels, nullptr);
    logits[i] = orig;
    EXPECT_NEAR(grad[i], (lp - lm) / (2 * eps), 1e-3f);
  }
}

TEST(LossTest, AccuracyCountsArgmaxMatches) {
  Tensor logits = Tensor::FromData(2, 3, {1.0f, 2.0f, 0.0f, 5.0f, 1.0f, 1.0f});
  std::vector<int> labels{1, 0};
  EXPECT_EQ(Accuracy(logits, labels), 1.0f);
  labels = {0, 0};
  EXPECT_EQ(Accuracy(logits, labels), 0.5f);
}

TEST(OptimizerTest, SgdStepsDownhill) {
  Tensor w = Tensor::FromData(1, 1, {1.0f});
  Tensor g = Tensor::FromData(1, 1, {2.0f});
  std::vector<ParamRef> params{{&w, &g, "w"}};
  SgdOptimizer opt(0.1f);
  opt.Step(params);
  EXPECT_NEAR(w[0], 0.8f, 1e-6f);
}

TEST(OptimizerTest, AdamConvergesOnQuadratic) {
  Tensor w = Tensor::FromData(1, 2, {3.0f, -2.0f});
  Tensor g({1, 2});
  std::vector<ParamRef> params{{&w, &g, "w"}};
  AdamOptimizer opt(0.1f);
  for (int i = 0; i < 300; ++i) {
    g[0] = 2.0f * (w[0] - 1.0f);
    g[1] = 2.0f * (w[1] + 1.0f);
    opt.Step(params);
  }
  EXPECT_NEAR(w[0], 1.0f, 1e-2f);
  EXPECT_NEAR(w[1], -1.0f, 1e-2f);
}

TEST(TrainerTest, MlpLearnsDigits) {
  Dataset all = MakeDigits8x8(1200, 42);
  Rng rng(1);
  auto [train, test] = all.Split(0.2, rng);
  Network net = BuildMlp(64, 10, {{32}, 0.0f, false}, rng);
  TrainConfig cfg;
  cfg.epochs = 8;
  cfg.batch_size = 32;
  cfg.learning_rate = 2e-3f;
  TrainResult result = Train(net, train, test, cfg);
  EXPECT_GT(result.final_test_accuracy, 0.8f)
      << "MLP failed to learn synthetic digits: " << result.final_test_accuracy;
}

TEST(TrainerTest, NeuroCLearnsDigits) {
  Dataset all = MakeDigits8x8(1200, 43);
  Rng rng(2);
  auto [train, test] = all.Split(0.2, rng);
  NeuroCSpec spec;
  spec.hidden = {48};
  Network net = BuildNeuroC(64, 10, spec, rng);
  TrainConfig cfg;
  cfg.epochs = 10;
  cfg.batch_size = 32;
  cfg.learning_rate = 3e-3f;
  TrainResult result = Train(net, train, test, cfg);
  EXPECT_GT(result.final_test_accuracy, 0.75f)
      << "Neuro-C failed to learn synthetic digits: " << result.final_test_accuracy;
}

TEST(TrainerTest, LossDecreasesDuringTraining) {
  Dataset all = MakeDigits8x8(600, 44);
  Rng rng(3);
  auto [train, test] = all.Split(0.2, rng);
  Network net = BuildMlp(64, 10, {{16}, 0.0f, false}, rng);
  TrainConfig cfg;
  cfg.epochs = 6;
  cfg.batch_size = 32;
  TrainResult result = Train(net, train, test, cfg);
  EXPECT_LT(result.history.back().train_loss, result.history.front().train_loss);
}

TEST(NetworkTest, SummaryAndParamCollection) {
  Rng rng(4);
  Network net = BuildMlp(10, 3, {{8, 4}, 0.1f, true}, rng);
  EXPECT_NE(net.Summary().find("dense"), std::string::npos);
  EXPECT_NE(net.Summary().find("batchnorm"), std::string::npos);
  // 2 hidden dense (W+b) + 2 bn (gamma+beta) + output dense (W+b) = 10 tensors.
  EXPECT_EQ(net.Params().size(), 10u);
}

TEST(NetworkTest, DeployedParameterCountForMlp) {
  Rng rng(5);
  Network net = BuildMlp(10, 3, {{8}, 0.0f, false}, rng);
  // dense 10x8 + 8 bias + dense 8x3 + 3 bias.
  EXPECT_EQ(net.DeployedParameterCount(), 10u * 8 + 8 + 8 * 3 + 3);
}


TEST(TrainerTest, GatherBatchCopiesRowsAndLabels) {
  Dataset ds = MakeDigits8x8(10, 3);
  Tensor x;
  std::vector<int> y;
  const std::vector<size_t> idx{9, 0, 4};
  GatherBatch(ds, idx, x, y);
  ASSERT_EQ(x.rows(), 3u);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_EQ(y[0], ds.labels[9]);
  EXPECT_EQ(y[2], ds.labels[4]);
  for (size_t c = 0; c < ds.input_dim(); ++c) {
    EXPECT_EQ(x.at(1, c), ds.images.at(0, c));
  }
}

TEST(TrainerTest, LrDecayReducesStepSizeOverEpochs) {
  // With aggressive decay, late epochs barely move the weights: train loss trajectory
  // should flatten rather than oscillate.
  Dataset all = MakeDigits8x8(600, 46);
  Rng rng(9);
  auto [train, test] = all.Split(0.2, rng);
  Network net = BuildMlp(64, 10, {{16}, 0.0f, false}, rng);
  TrainConfig cfg;
  cfg.epochs = 8;
  cfg.batch_size = 32;
  cfg.learning_rate = 5e-3f;
  cfg.lr_decay = 0.5f;
  TrainResult r = Train(net, train, test, cfg);
  const float late_delta =
      std::fabs(r.history[7].train_loss - r.history[6].train_loss);
  const float early_delta =
      std::fabs(r.history[1].train_loss - r.history[0].train_loss);
  EXPECT_LT(late_delta, early_delta);
}

TEST(TrainerTest, SgdMomentumAlsoLearns) {
  Dataset all = MakeDigits8x8(800, 47);
  Rng rng(10);
  auto [train, test] = all.Split(0.2, rng);
  Network net = BuildMlp(64, 10, {{24}, 0.0f, false}, rng);
  TrainConfig cfg;
  cfg.epochs = 10;
  cfg.batch_size = 32;
  cfg.use_adam = false;
  cfg.learning_rate = 5e-2f;
  cfg.momentum = 0.9f;
  TrainResult r = Train(net, train, test, cfg);
  EXPECT_GT(r.final_test_accuracy, 0.7f);
}

TEST(TrainerTest, EvaluateAccuracyMatchesManualLoop) {
  Dataset all = MakeDigits8x8(300, 48);
  Rng rng(11);
  Network net = BuildMlp(64, 10, {{16}, 0.0f, false}, rng);
  const float fast = EvaluateAccuracy(net, all, /*batch_size=*/64);
  // Manual single-example evaluation.
  size_t correct = 0;
  Tensor x;
  std::vector<int> y;
  for (size_t i = 0; i < all.num_examples(); ++i) {
    const std::vector<size_t> idx{i};
    GatherBatch(all, idx, x, y);
    const Tensor& logits = net.Forward(x, false);
    if (ArgMax(logits.row(0)) == static_cast<size_t>(y[0])) {
      ++correct;
    }
  }
  EXPECT_NEAR(fast, static_cast<float>(correct) / all.num_examples(), 1e-6f);
}

TEST(NeuroCLayerTest, AdjacencyRespectsTargetDensityDuringTraining) {
  Rng rng(50);
  NeuroCLayerConfig cfg;
  cfg.ternary.target_density = 0.1f;
  NeuroCLayer layer(100, 50, rng, cfg);
  const double density =
      static_cast<double>(layer.NonZeroCount()) / (100.0 * 50.0);
  EXPECT_NEAR(density, 0.1, 0.02);
}

TEST(NetworkTest, BuildersProduceChainedDimensions) {
  Rng rng(51);
  NeuroCSpec spec;
  spec.hidden = {32, 16};
  Network net = BuildNeuroC(100, 7, spec, rng);
  Tensor x({2, 100});
  const Tensor& out = net.Forward(x, false);
  EXPECT_EQ(out.rows(), 2u);
  EXPECT_EQ(out.cols(), 7u);
  Network mlp = BuildMlp(100, 7, {{32, 16}, 0.2f, true}, rng);
  const Tensor& out2 = mlp.Forward(x, false);
  EXPECT_EQ(out2.cols(), 7u);
}

TEST(FixedAdjacencyTest, SpatialWindowsAreLocal) {
  // Every connection of a spatial-local layer must lie within the window radius of some
  // center — verified indirectly: each column's active rows span at most (2r+1)^2 cells of
  // the image, all within a (2r+1)-sized bounding box.
  Rng rng(52);
  FixedAdjacencyConfig cfg;
  cfg.strategy = AdjacencyStrategy::kSpatialLocal;
  cfg.image_width = 8;
  cfg.window_radius = 1;
  FixedAdjacencyLayer layer(64, 12, rng, cfg);
  const Tensor& a = layer.adjacency();
  for (size_t j = 0; j < 12; ++j) {
    int min_x = 8, max_x = -1, min_y = 8, max_y = -1;
    for (size_t i = 0; i < 64; ++i) {
      if (a.at(i, j) != 0.0f) {
        const int x = static_cast<int>(i % 8);
        const int y = static_cast<int>(i / 8);
        min_x = std::min(min_x, x);
        max_x = std::max(max_x, x);
        min_y = std::min(min_y, y);
        max_y = std::max(max_y, y);
      }
    }
    if (max_x >= 0) {
      EXPECT_LE(max_x - min_x, 2 * cfg.window_radius) << "column " << j;
      EXPECT_LE(max_y - min_y, 2 * cfg.window_radius) << "column " << j;
    }
  }
}

}  // namespace
}  // namespace neuroc
