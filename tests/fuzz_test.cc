// Differential-fuzzing harness tests (ctest -L fuzz): short deterministic campaigns over
// all three oracles must come back clean, campaign JSON must be byte-identical at any
// thread-pool size, the case text form must round-trip losslessly, the greedy minimizer
// must descend to the predicate's boundary, and every checked-in corpus case must replay
// green (each one is a permanent regression test for a bug class the fuzzer can catch).

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/fuzz/fuzz.h"
#include "src/fuzz/minimize.h"
#include "src/fuzz/oracles.h"
#include "tests/test_util.h"

namespace neuroc {
namespace {

using testutil::GlobalThreadsGuard;

TEST(FuzzCaseTest, TextFormRoundTripsLosslessly) {
  for (FuzzOracle oracle : kAllFuzzOracles) {
    for (uint64_t seed : {1u, 2u, 3u, 17u}) {
      const FuzzCase c = GenerateFuzzCase(oracle, FuzzSubSeed(seed, 42));
      const std::string text = c.ToText();
      StatusOr<FuzzCase> parsed = ParseFuzzCase(text);
      ASSERT_TRUE(parsed.ok()) << text << "\n" << parsed.status().ToString();
      EXPECT_EQ(parsed->ToText(), text);
    }
  }
}

TEST(FuzzCaseTest, ExplicitInputSurvivesTextRoundTrip) {
  FuzzCase c = GenerateKernelCase(FuzzSubSeed(5, 0));
  c.in_dim = 4;
  c.explicit_input = {-128, 0, 63, 127};
  StatusOr<FuzzCase> parsed = ParseFuzzCase(c.ToText());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->explicit_input, c.explicit_input);
  EXPECT_EQ(parsed->ToText(), c.ToText());
}

TEST(FuzzCaseTest, ParserRejectsMalformedCases) {
  EXPECT_FALSE(ParseFuzzCase("oracle kernel\nbogus_key 3\n").ok());
  EXPECT_FALSE(ParseFuzzCase("oracle kernel\nin_dim 5000\nout_dim 4\n").ok());
  // Serde dimension chain (2 layers) inconsistent with one per-layer encoding.
  EXPECT_FALSE(
      ParseFuzzCase("oracle serde\ndims 8,4,2\nlayer_encodings csc\n").ok());
}

TEST(FuzzCaseTest, SubSeedIsDeterministicAndSpreads) {
  EXPECT_EQ(FuzzSubSeed(1, 0), FuzzSubSeed(1, 0));
  std::vector<uint64_t> seeds;
  for (uint64_t i = 0; i < 64; ++i) {
    seeds.push_back(FuzzSubSeed(1, i));
  }
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::unique(seeds.begin(), seeds.end()), seeds.end());
  EXPECT_NE(FuzzSubSeed(1, 0), FuzzSubSeed(2, 0));
}

TEST(FuzzCampaignTest, SmokeCampaignsComeBackClean) {
  struct Budget {
    FuzzOracle oracle;
    int cases;
  };
  for (const Budget& b : {Budget{FuzzOracle::kKernel, 12}, Budget{FuzzOracle::kIsa, 512},
                          Budget{FuzzOracle::kSerde, 16}}) {
    FuzzConfig cfg;
    cfg.oracle = b.oracle;
    cfg.seed = 1;
    cfg.cases = b.cases;
    const FuzzCampaignResult r = RunFuzzCampaign(cfg);
    EXPECT_EQ(r.failed, 0u) << FuzzOracleName(b.oracle) << ": "
                            << (r.failures.empty() ? "" : r.failures[0].detail);
    EXPECT_EQ(r.passed + r.skipped, static_cast<uint64_t>(b.cases));
    // Kernel/serde skips are rare (models that exceed the device); a majority of cases
    // must actually run or the campaign is not testing anything.
    EXPECT_GT(r.passed, static_cast<uint64_t>(b.cases) / 2);
  }
}

TEST(FuzzCampaignTest, JsonReportIsByteIdenticalAcrossThreadCounts) {
  GlobalThreadsGuard guard;
  auto report = [](FuzzOracle oracle, int cases) {
    FuzzConfig cfg;
    cfg.oracle = oracle;
    cfg.seed = 9;
    cfg.cases = cases;
    return FuzzCampaignJson(RunFuzzCampaign(cfg));
  };
  ThreadPool::SetGlobalThreads(1);
  const std::string kernel1 = report(FuzzOracle::kKernel, 10);
  const std::string isa1 = report(FuzzOracle::kIsa, 256);
  const std::string serde1 = report(FuzzOracle::kSerde, 12);
  for (unsigned threads : {2u, 4u}) {
    ThreadPool::SetGlobalThreads(threads);
    EXPECT_EQ(report(FuzzOracle::kKernel, 10), kernel1) << threads << " threads";
    EXPECT_EQ(report(FuzzOracle::kIsa, 256), isa1) << threads << " threads";
    EXPECT_EQ(report(FuzzOracle::kSerde, 12), serde1) << threads << " threads";
  }
}

TEST(MinimizeTest, GreedyDescentReachesPredicateBoundary) {
  // Mock predicate: a case "fails" iff it still has at least 3 output neurons. The
  // minimizer must walk out_dim down to exactly 3 — the smallest case that still fails —
  // and shrink the rest of the structure (density, scale, relu) to its floors.
  FuzzCase c = GenerateKernelCase(FuzzSubSeed(11, 0));
  c.in_dim = 64;
  c.out_dim = 48;
  ASSERT_GE(c.out_dim, 3u);
  MinimizeStats stats;
  const FuzzCase min = MinimizeFuzzCase(
      c, [](const FuzzCase& v) { return v.out_dim >= 3; }, 256, &stats);
  EXPECT_EQ(min.out_dim, 3u);
  EXPECT_GT(stats.reductions, 0);
  EXPECT_GE(stats.attempts, stats.reductions);
  EXPECT_FALSE(min.relu);
  EXPECT_FALSE(min.has_scale);
}

TEST(MinimizeTest, IsaShrinkDropsSecondHalfword) {
  FuzzCase c;
  c.oracle = FuzzOracle::kIsa;
  c.hw1 = 0xF123;
  c.hw2 = 0xFABC;
  const FuzzCase min =
      MinimizeFuzzCase(c, [](const FuzzCase& v) { return v.hw1 == 0xF123; });
  EXPECT_EQ(min.hw1, 0xF123);
  EXPECT_EQ(min.hw2, 0u);
}

TEST(MinimizeTest, CandidatesAreAlwaysValidCases) {
  for (FuzzOracle oracle : kAllFuzzOracles) {
    const FuzzCase c = GenerateFuzzCase(oracle, FuzzSubSeed(13, 7));
    for (const FuzzCase& cand : ShrinkCandidates(c)) {
      StatusOr<FuzzCase> parsed = ParseFuzzCase(cand.ToText());
      EXPECT_TRUE(parsed.ok()) << cand.ToText();
    }
  }
}

TEST(FuzzCorpusTest, EveryCheckedInCaseReplaysGreen) {
  // NEUROC_CORPUS_DIR is tests/corpus in the source tree (set by tests/CMakeLists.txt).
  // Each file is the minimized repro of a bug class the fuzzer caught during development
  // or a hand-authored edge case; a kFail here is a regression in the exact code path the
  // case was minimized to.
  const std::filesystem::path dir = NEUROC_CORPUS_DIR;
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  size_t replayed = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".fuzzcase") {
      continue;
    }
    StatusOr<FuzzCase> c = LoadFuzzCase(entry.path().string());
    ASSERT_TRUE(c.ok()) << entry.path() << ": " << c.status().ToString();
    const CaseResult r = RunFuzzCase(*c);
    EXPECT_NE(r.verdict, FuzzVerdict::kFail)
        << entry.path().filename() << ": " << r.detail;
    ++replayed;
  }
  EXPECT_GE(replayed, 10u);
}

}  // namespace
}  // namespace neuroc
