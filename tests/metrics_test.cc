#include <gtest/gtest.h>

#include "src/core/adjacency_stats.h"
#include "src/isa/assembler.h"
#include "src/sim/machine.h"
#include "src/train/metrics.h"

namespace neuroc {
namespace {

// ---------------------------------------------------------------------------
// ConfusionMatrix.
// ---------------------------------------------------------------------------

TEST(ConfusionMatrixTest, PerfectClassifier) {
  ConfusionMatrix cm(3);
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 10; ++i) {
      cm.Add(c, c);
    }
  }
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(cm.MacroF1(), 1.0);
  for (int c = 0; c < 3; ++c) {
    EXPECT_DOUBLE_EQ(cm.Precision(c), 1.0);
    EXPECT_DOUBLE_EQ(cm.Recall(c), 1.0);
  }
}

TEST(ConfusionMatrixTest, KnownCountsMatchHandComputation) {
  // Binary case: TP=8, FN=2, FP=1, TN=9.
  ConfusionMatrix cm(2);
  for (int i = 0; i < 8; ++i) cm.Add(1, 1);
  for (int i = 0; i < 2; ++i) cm.Add(1, 0);
  for (int i = 0; i < 1; ++i) cm.Add(0, 1);
  for (int i = 0; i < 9; ++i) cm.Add(0, 0);
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 17.0 / 20.0);
  EXPECT_DOUBLE_EQ(cm.Precision(1), 8.0 / 9.0);
  EXPECT_DOUBLE_EQ(cm.Recall(1), 8.0 / 10.0);
  const double p = 8.0 / 9.0, r = 0.8;
  EXPECT_NEAR(cm.F1(1), 2 * p * r / (p + r), 1e-12);
}

TEST(ConfusionMatrixTest, DegenerateClassesReportZero) {
  ConfusionMatrix cm(3);
  cm.Add(0, 0);
  // Class 2 never appears as truth or prediction.
  EXPECT_DOUBLE_EQ(cm.Precision(2), 0.0);
  EXPECT_DOUBLE_EQ(cm.Recall(2), 0.0);
  EXPECT_DOUBLE_EQ(cm.F1(2), 0.0);
}

TEST(ConfusionMatrixTest, MergeAccumulates) {
  ConfusionMatrix a(2), b(2);
  a.Add(0, 0);
  b.Add(0, 1);
  b.Add(1, 1);
  a.Merge(b);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.count(0, 1), 1u);
  EXPECT_NEAR(a.Accuracy(), 2.0 / 3.0, 1e-12);
}

TEST(ConfusionMatrixTest, FormatIncludesClassNames) {
  ConfusionMatrix cm(2);
  cm.Add(0, 0);
  cm.Add(1, 0);
  const std::string s = cm.Format({"cats", "dogs"});
  EXPECT_NE(s.find("cats"), std::string::npos);
  EXPECT_NE(s.find("dogs"), std::string::npos);
  EXPECT_NE(s.find("accuracy"), std::string::npos);
}

TEST(ConfusionMatrixTest, OutOfRangeAborts) {
  ConfusionMatrix cm(2);
  EXPECT_DEATH(cm.Add(2, 0), "");
  EXPECT_DEATH(cm.Add(0, -1), "");
}

// ---------------------------------------------------------------------------
// AdjacencyStats.
// ---------------------------------------------------------------------------

TEST(AdjacencyStatsTest, HandBuiltMatrix) {
  TernaryMatrix m(10, 3);
  m.set(0, 0, 1);
  m.set(4, 0, 1);
  m.set(9, 0, -1);
  m.set(2, 1, -1);
  // column 2 empty
  const AdjacencyStats s = AnalyzeAdjacency(m);
  EXPECT_EQ(s.nonzeros, 4u);
  EXPECT_EQ(s.positives, 2u);
  EXPECT_EQ(s.negatives, 2u);
  EXPECT_EQ(s.min_fan_in, 0u);
  EXPECT_EQ(s.max_fan_in, 3u);
  EXPECT_EQ(s.empty_columns, 1u);
  EXPECT_NEAR(s.density, 4.0 / 30.0, 1e-12);
  // Gaps: positive col0 has 0 -> 4 (gap 4); first indices 0, 9, 2.
  EXPECT_EQ(s.max_gap, 4u);
  EXPECT_EQ(s.max_first_index, 9u);
  EXPECT_TRUE(s.DeltaFitsOneByte());
}

TEST(AdjacencyStatsTest, DetectsSixteenBitDeltas) {
  TernaryMatrix m(600, 1);
  m.set(10, 0, 1);
  m.set(500, 0, 1);  // gap 490 > 255
  const AdjacencyStats s = AnalyzeAdjacency(m);
  EXPECT_EQ(s.max_gap, 490u);
  EXPECT_FALSE(s.DeltaFitsOneByte());
}

TEST(AdjacencyStatsTest, StatsMatchRandomMatrixProperties) {
  Rng rng(5);
  const TernaryMatrix m = TernaryMatrix::Random(200, 50, 0.15, rng);
  const AdjacencyStats s = AnalyzeAdjacency(m);
  EXPECT_EQ(s.nonzeros, m.NonZeroCount());
  EXPECT_EQ(s.max_fan_in, m.MaxColumnFanIn());
  EXPECT_NEAR(s.density, m.Density(), 1e-12);
  const std::string text = FormatAdjacencyStats(s);
  EXPECT_NE(text.find("fan-in"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Execution trace.
// ---------------------------------------------------------------------------

TEST(TraceTest, DumpListsRetiredInstructionsInOrder) {
  Machine m;
  m.cpu().EnableTrace(8);
  const AssembledProgram p = Assemble(R"(
    movs r0, #1
    adds r0, r0, #2
    movs r1, #3
    bx lr
  )", 0x08000000);
  m.LoadBytes(0x08000000, p.bytes);
  m.CallFunction(0x08000000, {});
  const std::string trace = m.cpu().DumpTrace();
  const size_t movs_pos = trace.find("movs r0, #1");
  const size_t adds_pos = trace.find("adds r0, r0, #2");
  const size_t bx_pos = trace.find("bx lr");
  EXPECT_NE(movs_pos, std::string::npos) << trace;
  EXPECT_NE(adds_pos, std::string::npos) << trace;
  EXPECT_NE(bx_pos, std::string::npos) << trace;
  EXPECT_LT(movs_pos, adds_pos);
  EXPECT_LT(adds_pos, bx_pos);
}

TEST(TraceTest, RingBufferKeepsOnlyLastN) {
  Machine m;
  m.cpu().EnableTrace(4);
  const AssembledProgram p = Assemble(R"(
    movs r0, #0
    movs r1, #10
loop:
    adds r0, r0, #1
    cmp r0, r1
    blt loop
    bx lr
  )", 0x08000000);
  m.LoadBytes(0x08000000, p.bytes);
  m.CallFunction(0x08000000, {});
  const std::string trace = m.cpu().DumpTrace();
  // Only the last 4 instructions: the loop tail and bx — the prologue movs #0 is long gone.
  EXPECT_EQ(trace.find("movs r0, #0"), std::string::npos) << trace;
  EXPECT_NE(trace.find("bx lr"), std::string::npos);
  // Exactly 4 lines.
  EXPECT_EQ(std::count(trace.begin(), trace.end(), '\n'), 4);
}

TEST(TraceTest, DisabledTraceIsEmpty) {
  Machine m;
  const AssembledProgram p = Assemble("movs r0, #1\nbx lr\n", 0x08000000);
  m.LoadBytes(0x08000000, p.bytes);
  m.CallFunction(0x08000000, {});
  EXPECT_TRUE(m.cpu().DumpTrace().empty());
}

TEST(TraceTest, FaultDumpIncludesRecentInstructions) {
  Machine m;
  m.cpu().EnableTrace(4);
  const AssembledProgram p = Assemble("movs r0, #7\nudf #0\n", 0x08000000);
  m.LoadBytes(0x08000000, p.bytes);
  // The fault dump must include the faulting context (checked via the traced instruction).
  EXPECT_DEATH(m.CallFunction(0x08000000, {}), "movs r0, #7");
}

}  // namespace
}  // namespace neuroc
