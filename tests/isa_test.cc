#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/isa/assembler.h"
#include "src/isa/decoder.h"
#include "src/isa/disassembler.h"
#include "src/isa/encoder.h"

namespace neuroc {
namespace {

// Encode → decode must be the identity on the operand fields each op uses.
void RoundTrip(const Instr& in) {
  uint16_t hw[2] = {0, 0};
  const int n = EncodeInstr(in, hw);
  const Instr out = DecodeInstr(hw[0], n == 2 ? hw[1] : 0);
  EXPECT_EQ(out.op, in.op) << Disassemble(in);
  EXPECT_EQ(out.length, n);
  switch (in.op) {
    case Op::kLslImm:
    case Op::kLsrImm:
    case Op::kAsrImm:
      EXPECT_EQ(out.rd, in.rd);
      EXPECT_EQ(out.rm, in.rm);
      EXPECT_EQ(out.imm, in.imm);
      break;
    case Op::kAddReg:
    case Op::kSubReg:
      EXPECT_EQ(out.rd, in.rd);
      EXPECT_EQ(out.rn, in.rn);
      EXPECT_EQ(out.rm, in.rm);
      break;
    case Op::kAddImm3:
    case Op::kSubImm3:
      EXPECT_EQ(out.rd, in.rd);
      EXPECT_EQ(out.rn, in.rn);
      EXPECT_EQ(out.imm, in.imm);
      break;
    case Op::kMovImm:
    case Op::kAddImm8:
    case Op::kSubImm8:
      EXPECT_EQ(out.rd, in.rd);
      EXPECT_EQ(out.imm, in.imm);
      break;
    case Op::kCmpImm:
      EXPECT_EQ(out.rn, in.rn);
      EXPECT_EQ(out.imm, in.imm);
      break;
    case Op::kBcond:
      EXPECT_EQ(out.cond, in.cond);
      EXPECT_EQ(out.imm, in.imm);
      break;
    case Op::kB:
    case Op::kBl:
      EXPECT_EQ(out.imm, in.imm);
      break;
    case Op::kPush:
    case Op::kPop:
      EXPECT_EQ(out.reglist, in.reglist);
      break;
    default:
      EXPECT_EQ(out.rd, in.rd);
      EXPECT_EQ(out.rm, in.rm);
      EXPECT_EQ(out.imm, in.imm);
      break;
  }
}

TEST(EncoderTest, ShiftImmediateRoundTrip) {
  for (uint8_t rd = 0; rd < 8; ++rd) {
    for (int imm : {0, 1, 7, 31}) {
      for (Op op : {Op::kLslImm, Op::kLsrImm, Op::kAsrImm}) {
        Instr in;
        in.op = op;
        in.rd = rd;
        in.rm = static_cast<uint8_t>(7 - rd);
        in.imm = imm;
        RoundTrip(in);
      }
    }
  }
}

TEST(EncoderTest, DataProcessingRoundTrip) {
  for (Op op : {Op::kAnd, Op::kEor, Op::kLslReg, Op::kLsrReg, Op::kAsrReg, Op::kAdc,
                Op::kSbc, Op::kRor, Op::kTst, Op::kNeg, Op::kCmpReg, Op::kCmn, Op::kOrr,
                Op::kMul, Op::kBic, Op::kMvn}) {
    Instr in;
    in.op = op;
    in.rd = 3;
    in.rn = 3;
    in.rm = 5;
    RoundTrip(in);
  }
}

TEST(EncoderTest, ImmediateFormsRoundTrip) {
  for (Op op : {Op::kMovImm, Op::kCmpImm, Op::kAddImm8, Op::kSubImm8}) {
    for (int imm : {0, 1, 127, 255}) {
      Instr in;
      in.op = op;
      in.rd = 2;
      in.rn = 2;
      in.imm = imm;
      RoundTrip(in);
    }
  }
}

TEST(EncoderTest, LoadStoreRoundTrip) {
  for (Op op : {Op::kStrReg, Op::kStrhReg, Op::kStrbReg, Op::kLdrsbReg, Op::kLdrReg,
                Op::kLdrhReg, Op::kLdrbReg, Op::kLdrshReg}) {
    Instr in;
    in.op = op;
    in.rd = 1;
    in.rn = 2;
    in.rm = 3;
    RoundTrip(in);
  }
  Instr w;
  w.op = Op::kLdrImm;
  w.rd = 4;
  w.rn = 5;
  w.imm = 124;
  RoundTrip(w);
  w.op = Op::kStrImm;
  RoundTrip(w);
  w.op = Op::kLdrbImm;
  w.imm = 31;
  RoundTrip(w);
  w.op = Op::kLdrhImm;
  w.imm = 62;
  RoundTrip(w);
}

TEST(EncoderTest, BranchRoundTrip) {
  for (int imm : {-256, -2, 0, 2, 254}) {
    Instr in;
    in.op = Op::kBcond;
    in.cond = Cond::kNe;
    in.imm = imm;
    RoundTrip(in);
  }
  for (int imm : {-2048, 0, 2046}) {
    Instr in;
    in.op = Op::kB;
    in.imm = imm;
    RoundTrip(in);
  }
}

TEST(EncoderTest, BlRoundTripAcrossRange) {
  for (int32_t imm : {-16777216, -65536, -2, 0, 2, 4096, 16777214}) {
    Instr in;
    in.op = Op::kBl;
    in.imm = imm;
    RoundTrip(in);
  }
}

TEST(EncoderTest, PushPopRoundTrip) {
  for (uint16_t list : {uint16_t{0x01}, uint16_t{0xF0}, uint16_t{0x1FF}, uint16_t{0x110}}) {
    Instr in;
    in.op = Op::kPush;
    in.reglist = list;
    RoundTrip(in);
    in.op = Op::kPop;
    RoundTrip(in);
  }
}

TEST(EncoderTest, HiRegisterRoundTrip) {
  for (Op op : {Op::kAddHi, Op::kMovHi}) {
    for (uint8_t rd : {uint8_t{0}, uint8_t{7}, uint8_t{12}, uint8_t{14}}) {
      Instr in;
      in.op = op;
      in.rd = rd;
      in.rm = 13;
      RoundTrip(in);
    }
  }
  Instr bx;
  bx.op = Op::kBx;
  bx.rm = kRegLr;
  RoundTrip(bx);
  bx.op = Op::kBlx;
  bx.rm = 3;
  RoundTrip(bx);
}

TEST(EncoderTest, MiscellaneousRoundTrip) {
  for (Op op : {Op::kSxth, Op::kSxtb, Op::kUxth, Op::kUxtb, Op::kRev, Op::kRev16,
                Op::kRevsh}) {
    Instr in;
    in.op = op;
    in.rd = 6;
    in.rm = 1;
    RoundTrip(in);
  }
  Instr sp;
  sp.op = Op::kAddSp7;
  sp.imm = 128;
  RoundTrip(sp);
  sp.op = Op::kSubSp7;
  RoundTrip(sp);
  sp.op = Op::kLdrSp;
  sp.rd = 3;
  sp.imm = 1020;
  RoundTrip(sp);
  sp.op = Op::kLdrLit;
  sp.imm = 1020;
  RoundTrip(sp);
  sp.op = Op::kNop;
  sp.imm = 0;
  sp.rd = 0;
  RoundTrip(sp);
}

TEST(DecoderTest, KnownEncodings) {
  // Cross-checked against the ARMv6-M ARM / GNU assembler output.
  EXPECT_EQ(DecodeInstr(0x2105, 0).op, Op::kMovImm);   // movs r1, #5
  EXPECT_EQ(DecodeInstr(0x2105, 0).rd, 1);
  EXPECT_EQ(DecodeInstr(0x2105, 0).imm, 5);
  EXPECT_EQ(DecodeInstr(0x1840, 0).op, Op::kAddReg);   // adds r0, r0, r1
  EXPECT_EQ(DecodeInstr(0x4348, 0).op, Op::kMul);      // muls r0, r1
  EXPECT_EQ(DecodeInstr(0x4770, 0).op, Op::kBx);       // bx lr
  EXPECT_EQ(DecodeInstr(0x4770, 0).rm, kRegLr);
  EXPECT_EQ(DecodeInstr(0xB570, 0).op, Op::kPush);     // push {r4, r5, r6, lr}
  EXPECT_EQ(DecodeInstr(0xB570, 0).reglist, 0x170);
  EXPECT_EQ(DecodeInstr(0xD1FE, 0).op, Op::kBcond);    // bne .-0
  EXPECT_EQ(DecodeInstr(0xD1FE, 0).imm, -4);
  EXPECT_EQ(DecodeInstr(0x7808, 0).op, Op::kLdrbImm);  // ldrb r0, [r1, #0]
  EXPECT_EQ(DecodeInstr(0x5D10, 0).op, Op::kLdrbReg);  // ldrb r0, [r2, r4]
  EXPECT_EQ(DecodeInstr(0xBF00, 0).op, Op::kNop);
}

TEST(DisassemblerTest, ProducesReadableText) {
  Instr in;
  in.op = Op::kAddReg;
  in.rd = 0;
  in.rn = 1;
  in.rm = 2;
  EXPECT_EQ(Disassemble(in), "adds r0, r1, r2");
  in.op = Op::kLdrbImm;
  in.rd = 3;
  in.rn = 4;
  in.imm = 5;
  EXPECT_EQ(Disassemble(in), "ldrb r3, [r4, #5]");
}

// ---------------------------------------------------------------------------
// Assembler.
// ---------------------------------------------------------------------------

TEST(AssemblerTest, AssemblesMinimalFunction) {
  const AssembledProgram p = Assemble(R"(
    movs r0, #42
    bx lr
  )", 0x08000000);
  ASSERT_EQ(p.bytes.size(), 4u);
  EXPECT_EQ(p.bytes[0], 0x2A);  // movs r0, #42 = 0x202A
  EXPECT_EQ(p.bytes[1], 0x20);
  EXPECT_EQ(p.bytes[2], 0x70);  // bx lr = 0x4770
  EXPECT_EQ(p.bytes[3], 0x47);
}

TEST(AssemblerTest, ResolvesForwardAndBackwardBranches) {
  const AssembledProgram p = Assemble(R"(
start:
    movs r0, #0
loop:
    adds r0, r0, #1
    cmp r0, #10
    bne loop
    b end
    nop
end:
    bx lr
  )", 0x08000000);
  EXPECT_EQ(p.SymbolAddr("start"), 0x08000000u);
  EXPECT_EQ(p.SymbolAddr("loop"), 0x08000002u);
  // bne loop at offset 6: offset = 2 - (6+4) = -8 → 0xD1FC.
  EXPECT_EQ(p.bytes[6], 0xFC);
  EXPECT_EQ(p.bytes[7], 0xD1);
}

TEST(AssemblerTest, LiteralPoolLoads) {
  const AssembledProgram p = Assemble(R"(
    ldr r0, =0x12345678
    bx lr
  )", 0x08000100);
  // 2 instructions (4 bytes) + pool (4 bytes, aligned).
  ASSERT_EQ(p.bytes.size(), 8u);
  EXPECT_EQ(p.bytes[4], 0x78);
  EXPECT_EQ(p.bytes[5], 0x56);
  EXPECT_EQ(p.bytes[6], 0x34);
  EXPECT_EQ(p.bytes[7], 0x12);
  // ldr r0, [pc, #0]: pc base = align(0x100+4,4)=0x104; literal at 0x104.
  EXPECT_EQ(p.bytes[0], 0x00);
  EXPECT_EQ(p.bytes[1], 0x48);
}

TEST(AssemblerTest, LiteralPoolReferencesLabel) {
  const AssembledProgram p = Assemble(R"(
    ldr r1, =table
    bx lr
    .align 2
table:
    .word 7, 8
  )", 0x08000000);
  const uint32_t table_addr = p.SymbolAddr("table");
  EXPECT_EQ(table_addr, 0x08000004u);
  // Pool entry holds the table address; pool is after .word data (offset 12).
  ASSERT_GE(p.bytes.size(), 16u);
  const uint32_t pool_val = static_cast<uint32_t>(p.bytes[12]) | (p.bytes[13] << 8) |
                            (p.bytes[14] << 16) | (static_cast<uint32_t>(p.bytes[15]) << 24);
  EXPECT_EQ(pool_val, table_addr);
}

TEST(AssemblerTest, DataDirectives) {
  const AssembledProgram p = Assemble(R"(
data:
    .byte 1, 2, 3
    .align 2
words:
    .word 0xAABBCCDD
  )", 0x08000000);
  EXPECT_EQ(p.bytes[0], 1);
  EXPECT_EQ(p.bytes[2], 3);
  EXPECT_EQ(p.SymbolAddr("words"), 0x08000004u);
  EXPECT_EQ(p.bytes[4], 0xDD);
  EXPECT_EQ(p.bytes[7], 0xAA);
}

TEST(AssemblerTest, MemoryOperandForms) {
  const AssembledProgram p = Assemble(R"(
    ldr r0, [r1]
    ldr r0, [r1, #8]
    ldr r0, [r1, r2]
    ldrb r3, [r4, #1]
    ldrsh r5, [r6, r7]
    strh r2, [r3, #6]
    str r1, [sp, #12]
  )", 0);
  ASSERT_EQ(p.bytes.size(), 14u);
  // Spot-check a couple of encodings.
  const uint16_t i0 = static_cast<uint16_t>(p.bytes[0] | (p.bytes[1] << 8));
  EXPECT_EQ(DecodeInstr(i0, 0).op, Op::kLdrImm);
  EXPECT_EQ(DecodeInstr(i0, 0).imm, 0);
  const uint16_t i6 = static_cast<uint16_t>(p.bytes[12] | (p.bytes[13] << 8));
  EXPECT_EQ(DecodeInstr(i6, 0).op, Op::kStrSp);
  EXPECT_EQ(DecodeInstr(i6, 0).imm, 12);
}

TEST(AssemblerTest, RegListParsing) {
  const AssembledProgram p = Assemble("push {r4-r6, lr}\npop {r4-r6, pc}\n", 0);
  const uint16_t push = static_cast<uint16_t>(p.bytes[0] | (p.bytes[1] << 8));
  const uint16_t pop = static_cast<uint16_t>(p.bytes[2] | (p.bytes[3] << 8));
  EXPECT_EQ(DecodeInstr(push, 0).reglist, 0x170);
  EXPECT_EQ(DecodeInstr(pop, 0).reglist, 0x170);
  EXPECT_EQ(DecodeInstr(pop, 0).op, Op::kPop);
}

TEST(AssemblerTest, CommentsAndBlankLinesIgnored) {
  const AssembledProgram p = Assemble(R"(
    @ full line comment
    movs r0, #1   // trailing
    ; another style

    bx lr
  )", 0);
  EXPECT_EQ(p.bytes.size(), 4u);
}

TEST(AssemblerTest, BlEncodesNegativeOffset) {
  const AssembledProgram p = Assemble(R"(
target:
    nop
    bl target
  )", 0x08000000);
  const uint16_t hw1 = static_cast<uint16_t>(p.bytes[2] | (p.bytes[3] << 8));
  const uint16_t hw2 = static_cast<uint16_t>(p.bytes[4] | (p.bytes[5] << 8));
  const Instr in = DecodeInstr(hw1, hw2);
  EXPECT_EQ(in.op, Op::kBl);
  // target(0) - (bl addr 2 + 4) = -6.
  EXPECT_EQ(in.imm, -6);
}

TEST(AssemblerTest, DuplicateLabelAborts) {
  EXPECT_DEATH(Assemble("a:\nnop\na:\nnop\n", 0), "duplicate label");
}

TEST(AssemblerTest, UndefinedLabelAborts) {
  EXPECT_DEATH(Assemble("b nowhere\n", 0), "undefined label");
}

TEST(AssemblerTest, UnknownMnemonicAborts) {
  EXPECT_DEATH(Assemble("frobnicate r0\n", 0), "unknown mnemonic");
}

TEST(AssemblerTest, AluAliases) {
  // movs rd, rm becomes lsls rd, rm, #0; negs becomes rsbs.
  const AssembledProgram p = Assemble("movs r1, r2\nnegs r0, r3\nmuls r2, r4, r2\n", 0);
  const uint16_t i0 = static_cast<uint16_t>(p.bytes[0] | (p.bytes[1] << 8));
  EXPECT_EQ(DecodeInstr(i0, 0).op, Op::kLslImm);
  EXPECT_EQ(DecodeInstr(i0, 0).imm, 0);
  const uint16_t i1 = static_cast<uint16_t>(p.bytes[2] | (p.bytes[3] << 8));
  EXPECT_EQ(DecodeInstr(i1, 0).op, Op::kNeg);
  const uint16_t i2 = static_cast<uint16_t>(p.bytes[4] | (p.bytes[5] << 8));
  EXPECT_EQ(DecodeInstr(i2, 0).op, Op::kMul);
  EXPECT_EQ(DecodeInstr(i2, 0).rd, 2);
  EXPECT_EQ(DecodeInstr(i2, 0).rm, 4);
}

TEST(AssemblerTest, RandomInstructionFuzzRoundTrip) {
  // Property: assembling the disassembly of a random valid instruction reproduces it.
  Rng rng(31337);
  const Op kFuzzOps[] = {Op::kLslImm, Op::kLsrImm, Op::kAsrImm, Op::kAddReg, Op::kSubReg,
                         Op::kAddImm3, Op::kSubImm3, Op::kMovImm, Op::kCmpImm, Op::kAddImm8,
                         Op::kSubImm8, Op::kAnd, Op::kEor, Op::kOrr, Op::kMul,
                         Op::kLdrReg, Op::kStrReg, Op::kLdrbImm, Op::kStrbImm};
  for (int iter = 0; iter < 300; ++iter) {
    Instr in;
    in.op = kFuzzOps[rng.NextBounded(std::size(kFuzzOps))];
    in.rd = static_cast<uint8_t>(rng.NextBounded(8));
    in.rn = static_cast<uint8_t>(rng.NextBounded(8));
    in.rm = static_cast<uint8_t>(rng.NextBounded(8));
    switch (in.op) {
      case Op::kLslImm:
      case Op::kLsrImm:
      case Op::kAsrImm:
        in.imm = static_cast<int32_t>(rng.NextBounded(31)) + 1;  // avoid the movs alias
        break;
      case Op::kAddImm3:
      case Op::kSubImm3:
        in.imm = static_cast<int32_t>(rng.NextBounded(8));
        break;
      case Op::kMovImm:
      case Op::kCmpImm:
      case Op::kAddImm8:
      case Op::kSubImm8:
        in.imm = static_cast<int32_t>(rng.NextBounded(256));
        break;
      case Op::kLdrbImm:
      case Op::kStrbImm:
        in.imm = static_cast<int32_t>(rng.NextBounded(32));
        break;
      default:
        in.imm = 0;
    }
    // DP two-operand ops use rn == rd.
    if (in.op == Op::kAnd || in.op == Op::kEor || in.op == Op::kOrr || in.op == Op::kMul) {
      in.rn = in.rd;
    }
    const AssembledProgram p = Assemble(Disassemble(in) + "\n", 0);
    ASSERT_EQ(p.bytes.size(), 2u) << Disassemble(in);
    const uint16_t hw = static_cast<uint16_t>(p.bytes[0] | (p.bytes[1] << 8));
    const Instr out = DecodeInstr(hw, 0);
    EXPECT_EQ(out.op, in.op) << Disassemble(in);
    EXPECT_EQ(Disassemble(out), Disassemble(in));
  }
}


TEST(EncoderTest, LdmStmRoundTrip) {
  for (Op op : {Op::kLdm, Op::kStm}) {
    for (uint16_t list : {uint16_t{0x01}, uint16_t{0x06}, uint16_t{0xFF}}) {
      Instr in;
      in.op = op;
      in.rn = 2;
      in.reglist = list;
      uint16_t hw[2];
      ASSERT_EQ(EncodeInstr(in, hw), 1);
      const Instr out = DecodeInstr(hw[0], 0);
      EXPECT_EQ(out.op, op);
      EXPECT_EQ(out.rn, in.rn);
      EXPECT_EQ(out.reglist, list);
    }
  }
}

TEST(AssemblerTest, LdmStmSyntax) {
  const AssembledProgram p = Assemble("stmia r0!, {r1, r2}\nldmia r3!, {r4-r6}\n", 0);
  const uint16_t i0 = static_cast<uint16_t>(p.bytes[0] | (p.bytes[1] << 8));
  const uint16_t i1 = static_cast<uint16_t>(p.bytes[2] | (p.bytes[3] << 8));
  EXPECT_EQ(DecodeInstr(i0, 0).op, Op::kStm);
  EXPECT_EQ(DecodeInstr(i0, 0).reglist, 0x06);
  EXPECT_EQ(DecodeInstr(i1, 0).op, Op::kLdm);
  EXPECT_EQ(DecodeInstr(i1, 0).rn, 3);
  EXPECT_EQ(DecodeInstr(i1, 0).reglist, 0x70);
}

TEST(AssemblerTest, LdmRejectsHighRegisters) {
  EXPECT_DEATH(Assemble("ldmia r0!, {r1, lr}\n", 0), "low registers");
}

TEST(DisassemblerTest, LdmStmText) {
  Instr in;
  in.op = Op::kStm;
  in.rn = 1;
  in.reglist = 0x0C;
  EXPECT_EQ(Disassemble(in), "stmia r1!, {r2, r3}");
}

}  // namespace
}  // namespace neuroc
