// Parity tests for the sparse ternary training kernels.
//
// The contract (sparse_kernels.h) is bit-exactness: each sparse kernel accumulates every
// output element in the dense reference's reduction order, so results are EXPECT_EQ-equal
// on the raw bit patterns — across densities, odd shapes, and any thread-pool size. These
// tests also pin the structural invariants of SparseTernaryMatrix (the three redundant
// views must describe the same matrix) and end-to-end training determinism: sparse-vs-dense
// kernels and 1-vs-4 threads must produce identical loss histories.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/data/dataset.h"
#include "src/tensor/matrix_ops.h"
#include "src/train/network.h"
#include "src/train/sparse_kernels.h"
#include "src/train/ternary.h"
#include "src/train/trainer.h"
#include "tests/test_util.h"

namespace neuroc {
namespace {

using testutil::GlobalThreadsGuard;

Tensor RandomTensor(size_t rows, size_t cols, Rng& rng, double zero_fraction = 0.0) {
  Tensor t({rows, cols});
  for (float& v : t.flat()) {
    v = rng.NextBool(zero_fraction) ? 0.0f : rng.NextGaussian(0.0f, 1.0f);
  }
  return t;
}

// Bit-for-bit equality: distinguishes +0.0 from -0.0 and would catch any reassociated
// rounding, which EXPECT_FLOAT_EQ (and even EXPECT_EQ on floats) would not.
void ExpectBitEqual(const Tensor& a, const Tensor& b, const char* what) {
  ASSERT_TRUE(a.SameShape(b)) << what;
  const float* ad = a.data();
  const float* bd = b.data();
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(std::bit_cast<uint32_t>(ad[i]), std::bit_cast<uint32_t>(bd[i]))
        << what << " diverges at flat index " << i << ": " << ad[i] << " vs " << bd[i];
  }
}

float ThresholdFor(const Tensor& latent, float density) {
  if (density >= 1.0f) {
    return 0.0f;  // Gaussian latents are never exactly 0, so t=0 keeps every entry
  }
  TernaryConfig cfg;
  cfg.target_density = density;
  return TernaryThreshold(latent, cfg);
}

struct Shape {
  size_t in, out, batch;
};

// 256×128 is the paper's first layer; 17×13 batch 5 exercises odd sizes (row-block and
// batch-pairing tails in every kernel).
const Shape kShapes[] = {{256, 128, 64}, {17, 13, 5}, {33, 7, 9}};
const float kDensities[] = {0.05f, 0.3f, 1.0f};

TEST(SparseKernelsTest, ForwardMatchesDenseBitForBit) {
  GlobalThreadsGuard guard;
  Rng rng(42);
  for (const Shape& s : kShapes) {
    for (float density : kDensities) {
      const Tensor latent = RandomTensor(s.in, s.out, rng);
      const float t = ThresholdFor(latent, density);
      Tensor dense;
      Ternarize(latent, t, dense);
      const SparseTernaryMatrix sparse = SparseTernaryMatrix::FromLatent(latent, t);
      // Inputs with exact zeros, like ReLU activations / empty pixels.
      const Tensor x = RandomTensor(s.batch, s.in, rng, 0.4);
      Tensor ref, got;
      MatMul(x, dense, ref);
      for (unsigned threads : {1u, 4u}) {
        ThreadPool::SetGlobalThreads(threads);
        SparseForward(x, sparse, got);
        ExpectBitEqual(got, ref, "SparseForward");
      }
    }
  }
}

TEST(SparseKernelsTest, GradInputMatchesDenseBitForBit) {
  GlobalThreadsGuard guard;
  Rng rng(43);
  for (const Shape& s : kShapes) {
    for (float density : kDensities) {
      const Tensor latent = RandomTensor(s.in, s.out, rng);
      const float t = ThresholdFor(latent, density);
      Tensor dense;
      Ternarize(latent, t, dense);
      const SparseTernaryMatrix sparse = SparseTernaryMatrix::FromLatent(latent, t);
      const Tensor gz = RandomTensor(s.batch, s.out, rng);
      Tensor ref, got;
      MatMulTransposeB(gz, dense, ref);
      for (unsigned threads : {1u, 4u}) {
        ThreadPool::SetGlobalThreads(threads);
        SparseGradInput(gz, sparse, got);
        ExpectBitEqual(got, ref, "SparseGradInput");
      }
    }
  }
}

TEST(SparseKernelsTest, GradLatentMatchesDenseBitForBit) {
  GlobalThreadsGuard guard;
  Rng rng(44);
  for (const Shape& s : kShapes) {
    // Activation zeros are what the kernel skips; include a fully dense x as well.
    for (double zero_fraction : {0.0, 0.5}) {
      const Tensor x = RandomTensor(s.batch, s.in, rng, zero_fraction);
      const Tensor gz = RandomTensor(s.batch, s.out, rng);
      Tensor ref, got;
      MatMulTransposeA(x, gz, ref);
      for (unsigned threads : {1u, 4u}) {
        ThreadPool::SetGlobalThreads(threads);
        SparseGradLatent(x, gz, got);
        ExpectBitEqual(got, ref, "SparseGradLatent");
      }
    }
  }
}

TEST(SparseKernelsTest, FromLatentEqualsTernarizeThenFromDense) {
  Rng rng(45);
  for (const Shape& s : kShapes) {
    for (float density : kDensities) {
      const Tensor latent = RandomTensor(s.in, s.out, rng);
      const float t = ThresholdFor(latent, density);
      Tensor dense;
      Ternarize(latent, t, dense);
      const SparseTernaryMatrix a = SparseTernaryMatrix::FromLatent(latent, t);
      const SparseTernaryMatrix b = SparseTernaryMatrix::FromDense(dense);
      EXPECT_EQ(a.rows, b.rows);
      EXPECT_EQ(a.cols, b.cols);
      EXPECT_EQ(a.pos_ptr, b.pos_ptr);
      EXPECT_EQ(a.pos_idx, b.pos_idx);
      EXPECT_EQ(a.neg_ptr, b.neg_ptr);
      EXPECT_EQ(a.neg_idx, b.neg_idx);
      EXPECT_EQ(a.ptr, b.ptr);
      EXPECT_EQ(a.idx, b.idx);
      EXPECT_EQ(a.sign, b.sign);
      EXPECT_EQ(a.row_ptr, b.row_ptr);
      EXPECT_EQ(a.row_idx, b.row_idx);
      EXPECT_EQ(a.row_sign, b.row_sign);
      EXPECT_EQ(a.NonZeroCount(), CountNonZero(latent, t));
    }
  }
}

TEST(SparseKernelsTest, ToDenseRoundTrips) {
  Rng rng(46);
  for (const Shape& s : kShapes) {
    const Tensor latent = RandomTensor(s.in, s.out, rng);
    const float t = ThresholdFor(latent, 0.3f);
    Tensor dense;
    Ternarize(latent, t, dense);
    Tensor round_trip;
    SparseTernaryMatrix::FromDense(dense).ToDense(round_trip);
    ExpectBitEqual(round_trip, dense, "ToDense round trip");
  }
}

TEST(SparseKernelsTest, AssignFromLatentReusesObjectCorrectly) {
  Rng rng(47);
  // Rebuild the same object across different shapes and densities (larger → smaller →
  // larger); every rebuild must be indistinguishable from a fresh FromLatent.
  SparseTernaryMatrix reused;
  for (const Shape& s : {Shape{64, 32, 1}, Shape{17, 13, 1}, Shape{128, 96, 1}}) {
    for (float density : kDensities) {
      const Tensor latent = RandomTensor(s.in, s.out, rng);
      const float t = ThresholdFor(latent, density);
      reused.AssignFromLatent(latent, t);
      const SparseTernaryMatrix fresh = SparseTernaryMatrix::FromLatent(latent, t);
      EXPECT_EQ(reused.ptr, fresh.ptr);
      EXPECT_EQ(reused.idx, fresh.idx);
      EXPECT_EQ(reused.sign, fresh.sign);
      EXPECT_EQ(reused.row_ptr, fresh.row_ptr);
      EXPECT_EQ(reused.row_idx, fresh.row_idx);
      EXPECT_EQ(reused.row_sign, fresh.row_sign);
      EXPECT_EQ(reused.pos_idx, fresh.pos_idx);
      EXPECT_EQ(reused.neg_idx, fresh.neg_idx);
    }
  }
}

TEST(SparseKernelsTest, ColumnAndRowViewsDescribeTheSameMatrix) {
  Rng rng(48);
  const Tensor latent = RandomTensor(33, 21, rng);
  const float t = ThresholdFor(latent, 0.3f);
  const SparseTernaryMatrix a = SparseTernaryMatrix::FromLatent(latent, t);
  // Reconstruct dense from the column view and from the row view; both must agree with
  // the merged traversal and with each other.
  Tensor from_cols({a.rows, a.cols});
  from_cols.Fill(0.0f);
  for (size_t j = 0; j < a.cols; ++j) {
    EXPECT_EQ(a.ptr[j + 1] - a.ptr[j],
              (a.pos_ptr[j + 1] - a.pos_ptr[j]) + (a.neg_ptr[j + 1] - a.neg_ptr[j]));
    for (uint32_t k = a.ptr[j]; k < a.ptr[j + 1]; ++k) {
      if (k > a.ptr[j]) {
        EXPECT_LT(a.idx[k - 1], a.idx[k]) << "column " << j << " not ascending";
      }
      from_cols.at(a.idx[k], j) = a.sign[k];
    }
  }
  Tensor from_rows({a.rows, a.cols});
  from_rows.Fill(0.0f);
  for (size_t i = 0; i < a.rows; ++i) {
    for (uint32_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      if (k > a.row_ptr[i]) {
        EXPECT_LT(a.row_idx[k - 1], a.row_idx[k]) << "row " << i << " not ascending";
      }
      from_rows.at(i, a.row_idx[k]) = a.row_sign[k];
    }
  }
  ExpectBitEqual(from_rows, from_cols, "row view vs column view");
  EXPECT_EQ(a.row_ptr.back(), a.NonZeroCount());
  EXPECT_NEAR(a.Density(),
              static_cast<double>(a.NonZeroCount()) / static_cast<double>(a.rows * a.cols),
              1e-12);
}

// ---------------------------------------------------------------------------
// End-to-end determinism: the properties the bench and tests rely on.
// ---------------------------------------------------------------------------

Dataset SmallDataset(size_t n, uint64_t seed) {
  Dataset ds;
  ds.name = "parity-synthetic";
  ds.width = 8;
  ds.height = 8;
  ds.channels = 1;
  ds.num_classes = 10;
  ds.images = Tensor({n, size_t{64}});
  ds.labels.resize(n);
  Rng rng(seed);
  for (float& v : ds.images.flat()) {
    v = rng.NextBool(0.5) ? 0.0f : rng.NextUniform(0.0f, 1.0f);
  }
  for (int& l : ds.labels) {
    l = static_cast<int>(rng.NextBounded(10));
  }
  return ds;
}

TrainResult TrainSmall(bool sparse, unsigned threads) {
  ThreadPool::SetGlobalThreads(threads);
  const Dataset train = SmallDataset(256, 5);
  const Dataset test = SmallDataset(64, 6);
  NeuroCSpec spec;
  spec.hidden = {32};
  spec.layer.ternary.target_density = 0.2f;
  spec.layer.use_sparse_kernels = sparse;
  Rng rng(9);
  Network net = BuildNeuroC(64, 10, spec, rng);
  TrainConfig cfg;
  cfg.epochs = 3;
  cfg.batch_size = 32;
  cfg.learning_rate = 5e-3f;
  return Train(net, train, test, cfg);
}

void ExpectIdenticalHistories(const TrainResult& a, const TrainResult& b, const char* what) {
  ASSERT_EQ(a.history.size(), b.history.size()) << what;
  for (size_t e = 0; e < a.history.size(); ++e) {
    EXPECT_EQ(std::bit_cast<uint32_t>(a.history[e].train_loss),
              std::bit_cast<uint32_t>(b.history[e].train_loss))
        << what << ": train_loss diverges at epoch " << e;
    EXPECT_EQ(a.history[e].train_accuracy, b.history[e].train_accuracy)
        << what << ": epoch " << e;
    EXPECT_EQ(a.history[e].test_accuracy, b.history[e].test_accuracy)
        << what << ": epoch " << e;
  }
}

TEST(SparseKernelsTest, TrainingLossCurveIsThreadCountInvariant) {
  GlobalThreadsGuard guard;
  const TrainResult t1 = TrainSmall(/*sparse=*/true, /*threads=*/1);
  const TrainResult t4 = TrainSmall(/*sparse=*/true, /*threads=*/4);
  ExpectIdenticalHistories(t1, t4, "sparse 1-vs-4 threads");
}

TEST(SparseKernelsTest, SparseAndDenseTrainersProduceIdenticalLossCurves) {
  GlobalThreadsGuard guard;
  const TrainResult dense = TrainSmall(/*sparse=*/false, /*threads=*/1);
  const TrainResult sparse = TrainSmall(/*sparse=*/true, /*threads=*/4);
  ExpectIdenticalHistories(dense, sparse, "dense-1t vs sparse-4t");
}

}  // namespace
}  // namespace neuroc
