// Fault-injection campaign tests: integrity coverage (every single-bit flip in the model
// image and kernel code is CRC-detectable), deterministic campaign output across thread
// counts, and full recovery-ladder coverage (snapshot retry, scrub, redeploy, dual-run)
// of detected faults.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/core/synthetic.h"
#include "src/runtime/deployed_model.h"
#include "src/runtime/fault_campaign.h"
#include "src/sim/fault_injector.h"
#include "tests/test_util.h"

namespace neuroc {
namespace {

using testutil::GlobalThreadsGuard;

NeuroCModel TinyModel(uint64_t seed, EncodingKind encoding = EncodingKind::kCsc) {
  testutil::TestModelSpec spec;
  spec.dims = {32, 12};
  spec.density = 0.25;
  spec.encoding = encoding;
  spec.final_relu = true;
  return testutil::MakeTestModel(seed, spec);
}

TEST(IntegrityTest, EverySingleBitFlipInModelImageIsDetected) {
  // Exhaustively flip every bit of the packed model image in simulated flash: the CRC
  // layer must flag each one. The whole-image digest covers alignment padding between
  // named sections, so there is no undetectable gap.
  NeuroCModel model = TinyModel(1);
  DeployedModel deployed = DeployedModel::Deploy(model);
  ASSERT_TRUE(deployed.VerifyIntegrity().ok());
  MemoryMap& mem = deployed.machine().memory();
  const uint32_t base = deployed.image_base();
  const uint32_t size = static_cast<uint32_t>(deployed.image().flash.size());
  ASSERT_GT(size, 0u);
  uint32_t detected = 0;
  for (uint32_t off = 0; off < size; ++off) {
    uint8_t byte = 0;
    mem.HostRead(base + off, {&byte, 1});
    for (int bit = 0; bit < 8; ++bit) {
      const uint8_t flipped = static_cast<uint8_t>(byte ^ (1u << bit));
      mem.HostWrite(base + off, {&flipped, 1});
      if (!deployed.CorruptedSections().empty()) {
        ++detected;
      }
      mem.HostWrite(base + off, {&byte, 1});
    }
  }
  EXPECT_EQ(detected, size * 8u);  // 100% single-bit coverage
  EXPECT_TRUE(deployed.VerifyIntegrity().ok());  // restoration left the image pristine
}

TEST(IntegrityTest, EverySingleBitFlipInKernelCodeIsDetected) {
  NeuroCModel model = TinyModel(2);
  DeployedModel deployed = DeployedModel::Deploy(model);
  MemoryMap& mem = deployed.machine().memory();
  const uint32_t base = deployed.machine().config().flash_base;
  const uint32_t size = static_cast<uint32_t>(deployed.kernel_program().bytes.size());
  ASSERT_GT(size, 0u);
  uint32_t detected = 0;
  for (uint32_t off = 0; off < size; ++off) {
    uint8_t byte = 0;
    mem.HostRead(base + off, {&byte, 1});
    for (int bit = 0; bit < 8; ++bit) {
      const uint8_t flipped = static_cast<uint8_t>(byte ^ (1u << bit));
      mem.HostWrite(base + off, {&flipped, 1});
      const std::vector<std::string> bad = deployed.CorruptedSections();
      if (!bad.empty() && bad[0] == "kernel_code") {
        ++detected;
      }
      mem.HostWrite(base + off, {&byte, 1});
    }
  }
  EXPECT_EQ(detected, size * 8u);
  EXPECT_TRUE(deployed.VerifyIntegrity().ok());
}

TEST(IntegrityTest, SectionDigestsNameTheCorruptedRegion) {
  NeuroCModel model = TinyModel(3);
  DeployedModel deployed = DeployedModel::Deploy(model);
  MemoryMap& mem = deployed.machine().memory();
  // Corrupt a descriptor byte: both the whole-image digest and the descriptor section
  // must flag it, and VerifyIntegrity's message must name the section.
  uint8_t byte = 0;
  mem.HostRead(deployed.image_base(), {&byte, 1});
  const uint8_t flipped = static_cast<uint8_t>(byte ^ 0x10);
  mem.HostWrite(deployed.image_base(), {&flipped, 1});
  const std::vector<std::string> bad = deployed.CorruptedSections();
  EXPECT_NE(std::find(bad.begin(), bad.end(), "image"), bad.end());
  EXPECT_NE(std::find(bad.begin(), bad.end(), "descriptors"), bad.end());
  Status integrity = deployed.VerifyIntegrity();
  ASSERT_FALSE(integrity.ok());
  EXPECT_EQ(integrity.code(), ErrorCode::kIntegrityFailure);
  EXPECT_NE(integrity.ToString().find("descriptors"), std::string::npos);
  // Scrub restores pristine state.
  deployed.Scrub();
  EXPECT_TRUE(deployed.VerifyIntegrity().ok());
}

TEST(FaultInjectorTest, SeededInjectionIsDeterministic) {
  NeuroCModel model = TinyModel(4);
  DeployedModel a = DeployedModel::Deploy(model);
  DeployedModel b = DeployedModel::Deploy(model);
  for (uint64_t seed = 0; seed < 16; ++seed) {
    Rng ra(seed), rb(seed);
    const InjectedFault fa = InjectFault(a.machine().memory(), a.image_base(),
                                         static_cast<uint32_t>(a.image().flash.size()),
                                         FaultModel::kSingleBitFlip, 1, ra);
    const InjectedFault fb = InjectFault(b.machine().memory(), b.image_base(),
                                         static_cast<uint32_t>(b.image().flash.size()),
                                         FaultModel::kSingleBitFlip, 1, rb);
    EXPECT_EQ(fa.addr, fb.addr);
    EXPECT_EQ(fa.mask, fb.mask);
    EXPECT_EQ(fa.after, fb.after);
    a.Scrub();
    b.Scrub();
  }
}

FaultCampaignConfig SmallCampaign() {
  FaultCampaignConfig cfg;
  cfg.trials_per_encoding = 24;
  cfg.seed = 7;
  cfg.in_dim = 32;
  cfg.hidden_dim = 16;
  cfg.out_dim = 8;
  return cfg;
}

TEST(FaultCampaignTest, OutcomesPartitionTrialsAndDetectedFaultsRecover) {
  const FaultCampaignConfig cfg = SmallCampaign();
  const FaultCampaignResult result = RunFaultCampaign(cfg);
  ASSERT_EQ(result.encodings.size(), std::size(kAllEncodingKinds));
  uint64_t trials = 0;
  for (const EncodingCampaignResult& enc : result.encodings) {
    EXPECT_GT(enc.golden_instructions, 0u);
    EXPECT_GT(enc.program_bytes, 0u);
    ASSERT_EQ(enc.regions.size(), cfg.regions.size());
    // Region counters roll up to the encoding totals, outcomes partition the trials.
    RegionStats sum;
    for (const RegionStats& r : enc.regions) {
      sum.Add(r);
      EXPECT_EQ(r.correct + r.sdc + r.detected + r.budget_exceeded +
                    r.deadline_exceeded + r.dual_run_caught,
                r.trials);
    }
    EXPECT_EQ(sum.trials, enc.totals.trials);
    EXPECT_EQ(sum.sdc, enc.totals.sdc);
    EXPECT_EQ(enc.totals.trials, static_cast<uint64_t>(cfg.trials_per_encoding));
    trials += enc.totals.trials;
  }
  EXPECT_EQ(trials, result.totals.trials);
  // With the ladder on, every detected trial must recover: the pristine snapshot (and as
  // a last resort a fresh deployment) is always available.
  EXPECT_EQ(result.totals.recovered,
            result.totals.detected + result.totals.budget_exceeded +
                result.totals.deadline_exceeded + result.totals.dual_run_caught);
  EXPECT_EQ(result.totals.unrecovered, 0u);
  EXPECT_EQ(result.totals.permanent_failure, 0u);
  // Recoveries are attributed to exactly one rung.
  EXPECT_EQ(result.totals.recovered_snapshot + result.totals.recovered_scrub +
                result.totals.recovered_redeploy,
            result.totals.recovered);
}

TEST(FaultCampaignTest, JsonIsByteIdenticalAcrossRunsAndThreadCounts) {
  GlobalThreadsGuard guard;
  const FaultCampaignConfig cfg = SmallCampaign();
  ThreadPool::SetGlobalThreads(1);
  const std::string json1 = FaultCampaignJson(RunFaultCampaign(cfg));
  ThreadPool::SetGlobalThreads(4);
  const std::string json4 = FaultCampaignJson(RunFaultCampaign(cfg));
  const std::string json4_again = FaultCampaignJson(RunFaultCampaign(cfg));
  EXPECT_EQ(json1, json4);
  EXPECT_EQ(json4, json4_again);
  EXPECT_NE(json1.find("\"seed\": 7"), std::string::npos);
}

TEST(FaultCampaignTest, MidInferenceTriggerAndStuckAtFaultsClassifyCleanly) {
  FaultCampaignConfig cfg = SmallCampaign();
  cfg.trials_per_encoding = 12;
  cfg.trigger = FaultTrigger::kMidInference;
  cfg.fault_model = FaultModel::kStuckAtOne;
  cfg.encodings = {EncodingKind::kCsc, EncodingKind::kDelta};
  const FaultCampaignResult result = RunFaultCampaign(cfg);
  ASSERT_EQ(result.encodings.size(), 2u);
  EXPECT_EQ(result.totals.trials, 24u);
  EXPECT_EQ(result.totals.correct + result.totals.sdc + result.totals.detected +
                result.totals.budget_exceeded + result.totals.deadline_exceeded +
                result.totals.dual_run_caught,
            result.totals.trials);
  EXPECT_EQ(result.totals.unrecovered, 0u);
}

TEST(FaultCampaignTest, DualRunConvertsSramSdcIntoDetectedAndRecovers) {
  // Mid-inference SRAM faults with redundant execution: every wrong output stems from
  // state the second (pristine-RAM) run does not share, so nothing can stay silent —
  // former SDC classifies as dual_run_caught and the ladder recovers it. (Pre-inference
  // SRAM faults are mostly masked: the inference rewrites its buffers before reading.)
  FaultCampaignConfig cfg = SmallCampaign();
  cfg.trials_per_encoding = 48;
  cfg.trigger = FaultTrigger::kMidInference;
  cfg.regions = {CampaignRegion::kSram};
  cfg.encodings = {EncodingKind::kCsc, EncodingKind::kUnrolled};
  cfg.policy.dual_run = true;
  const FaultCampaignResult result = RunFaultCampaign(cfg);
  EXPECT_EQ(result.totals.sdc, 0u);
  EXPECT_GT(result.totals.dual_run_caught, 0u);
  EXPECT_EQ(result.totals.unrecovered, 0u);

  // The same campaign without dual-run leaves a nonzero silent-corruption rate — the
  // measured improvement the redundancy pays for.
  cfg.policy.dual_run = false;
  const FaultCampaignResult baseline = RunFaultCampaign(cfg);
  EXPECT_GT(baseline.totals.sdc, 0u);
}

TEST(FaultCampaignTest, FullLadderJsonIsByteIdenticalAcrossThreadCounts) {
  // The thread-invariance contract must survive the complete ladder: watchdog, dual-run,
  // and the redeploy rung (which swaps deployments mid-chunk) all enabled at once.
  GlobalThreadsGuard guard;
  FaultCampaignConfig cfg = SmallCampaign();
  cfg.trigger = FaultTrigger::kMidInference;
  cfg.policy.dual_run = true;
  cfg.encodings = {EncodingKind::kCsc, EncodingKind::kBlock, EncodingKind::kUnrolled};
  ThreadPool::SetGlobalThreads(1);
  const std::string json1 = FaultCampaignJson(RunFaultCampaign(cfg));
  ThreadPool::SetGlobalThreads(4);
  const std::string json4 = FaultCampaignJson(RunFaultCampaign(cfg));
  EXPECT_EQ(json1, json4);
  EXPECT_NE(json1.find("\"dual_run\": true"), std::string::npos);
  EXPECT_NE(json1.find("mean_detect_latency_cycles"), std::string::npos);
}

TEST(FaultCampaignTest, RecoveryReportOnCleanDeploymentDoesNotFault) {
  NeuroCModel model = TinyModel(5);
  DeployedModel deployed = DeployedModel::Deploy(model);
  std::vector<int8_t> input(32, 3);
  RecoveryReport rec = deployed.PredictWithRecovery(input);
  EXPECT_FALSE(rec.faulted);
  EXPECT_TRUE(rec.corrupted_sections.empty());
  std::vector<int8_t> host;
  model.Forward(input, host);
  EXPECT_EQ(deployed.LastOutput(), host);
  EXPECT_EQ(rec.prediction,
            static_cast<int>(std::max_element(host.begin(), host.end()) - host.begin()));
}

}  // namespace
}  // namespace neuroc
