#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "src/core/synthetic.h"
#include "src/data/synth.h"
#include "src/runtime/c_emitter.h"
#include "src/runtime/deployed_model.h"
#include "src/runtime/platform.h"
#include "src/train/trainer.h"
#include "tests/test_util.h"

namespace neuroc {
namespace {

TEST(PlatformTest, RegistryCoversAllClasses) {
  bool low = false, medium = false, advanced = false;
  for (const PlatformSpec& p : AllPlatforms()) {
    low |= p.mcu_class == McuClass::kLow;
    medium |= p.mcu_class == McuClass::kMedium;
    advanced |= p.mcu_class == McuClass::kAdvanced;
  }
  EXPECT_TRUE(low);
  EXPECT_TRUE(medium);
  EXPECT_TRUE(advanced);
}

TEST(PlatformTest, LowClassMatchesPaperTable1) {
  for (const PlatformSpec& p : AllPlatforms()) {
    if (p.mcu_class == McuClass::kLow) {
      EXPECT_FALSE(p.has_fpu) << p.name;
      EXPECT_FALSE(p.has_dsp_mac) << p.name;
      EXPECT_FALSE(p.has_simd) << p.name;
      EXPECT_LT(p.ram_bytes, 128u * 1024) << p.name;
      EXPECT_LT(p.flash_bytes, 512u * 1024) << p.name;
    }
  }
}

TEST(PlatformTest, EvaluationBoardIsStm32f072) {
  const PlatformSpec& p = Stm32f072rb();
  EXPECT_EQ(p.core, "Cortex-M0");
  EXPECT_EQ(p.ram_bytes, 16u * 1024);
  EXPECT_EQ(p.flash_bytes, 128u * 1024);
  EXPECT_DOUBLE_EQ(p.clock_hz, 8e6);
  const MachineConfig cfg = p.ToMachineConfig();
  EXPECT_EQ(cfg.ram_size, 16u * 1024);
  EXPECT_EQ(cfg.cycle_model.mul, 1);
}

TEST(PlatformTest, LookupByNameAbortsOnUnknown) {
  EXPECT_EQ(PlatformByName("STM32F072RB").core, "Cortex-M0");
  EXPECT_DEATH(PlatformByName("Z80"), "Z80");
}

// ---------------------------------------------------------------------------
// C emitter: generated sources must compile (host cc) and match host predictions.
// ---------------------------------------------------------------------------

NeuroCModel MakeSmallModel(uint64_t seed, EncodingKind kind) {
  testutil::TestModelSpec spec;
  spec.encoding = kind;
  return testutil::MakeTestModel(seed, spec);
}

TEST(CEmitterTest, HeaderAndSourceContainApi) {
  NeuroCModel model = MakeSmallModel(1, EncodingKind::kBlock);
  const CSources src = EmitCSources(model, "demo");
  EXPECT_NE(src.header.find("int demo_predict(const int8_t* input);"), std::string::npos);
  EXPECT_NE(src.header.find("#define demo_INPUT_DIM 64"), std::string::npos);
  EXPECT_NE(src.header.find("#define demo_OUTPUT_DIM 10"), std::string::npos);
  EXPECT_NE(src.source.find("nc_run_layer"), std::string::npos);
  EXPECT_NE(src.source.find("demo_layers"), std::string::npos);
}

class CEmitterCompileTest : public ::testing::TestWithParam<EncodingKind> {};

TEST_P(CEmitterCompileTest, CompiledCodeMatchesHostPredictions) {
  NeuroCModel model = MakeSmallModel(7 + static_cast<uint64_t>(GetParam()), GetParam());
  const CSources src = EmitCSources(model, "m");

  const std::string dir = ::testing::TempDir() + "/neuroc_cgen_" +
                          std::to_string(static_cast<int>(GetParam()));
  std::system(("mkdir -p " + dir).c_str());
  std::ofstream(dir + "/m.h") << src.header;
  std::ofstream(dir + "/m.c") << src.source;

  // Driver: read q7 inputs from stdin as ints, print predicted class per line.
  std::ofstream(dir + "/main.c") << R"(
#include <stdio.h>
#include "m.h"
int main(void) {
  int8_t input[m_INPUT_DIM];
  for (;;) {
    for (int i = 0; i < m_INPUT_DIM; ++i) {
      int v;
      if (scanf("%d", &v) != 1) { return 0; }
      input[i] = (int8_t)v;
    }
    printf("%d\n", m_predict(input));
  }
}
)";
  const std::string exe = dir + "/runner";
  const std::string cmd = "cc -std=c99 -O1 -Wall -o " + exe + " " + dir + "/main.c " + dir +
                          "/m.c 2> " + dir + "/cc.log";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << "generated C failed to compile";

  // Feed 20 random inputs, compare against the host model.
  Rng rng(99);
  std::vector<std::vector<int8_t>> inputs;
  std::string stdin_data;
  for (int t = 0; t < 20; ++t) {
    inputs.push_back(MakeRandomInput(model.in_dim(), rng));
    for (int8_t v : inputs.back()) {
      stdin_data += std::to_string(static_cast<int>(v)) + " ";
    }
  }
  std::ofstream(dir + "/inputs.txt") << stdin_data;
  ASSERT_EQ(std::system((exe + " < " + dir + "/inputs.txt > " + dir + "/out.txt").c_str()), 0);
  std::ifstream out(dir + "/out.txt");
  for (int t = 0; t < 20; ++t) {
    int predicted = -1;
    ASSERT_TRUE(out >> predicted) << "missing output line " << t;
    EXPECT_EQ(predicted, model.Predict(inputs[static_cast<size_t>(t)])) << "input " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(AllEncodings, CEmitterCompileTest,
                         ::testing::ValuesIn(std::vector<EncodingKind>(
                             std::begin(kAllEncodingKinds), std::end(kAllEncodingKinds))));

// ---------------------------------------------------------------------------
// Flash-budget guard and encoding fallback.
// ---------------------------------------------------------------------------

NeuroCModel MakeWideLayerModel(EncodingKind kind, size_t in_dim, size_t out_dim,
                               double density) {
  Rng rng(41);
  SyntheticNeuroCLayerSpec spec;
  spec.in_dim = in_dim;
  spec.out_dim = out_dim;
  spec.density = density;
  spec.encoding = kind;
  std::vector<QuantNeuroCLayer> layers;
  layers.push_back(MakeSyntheticNeuroCLayer(spec, rng));
  return NeuroCModel::FromLayers(std::move(layers));
}

TEST(DeployFallbackTest, FittingModelDeploysWithoutFallback) {
  NeuroCModel model = MakeSmallModel(3, EncodingKind::kUnrolled);
  DeployFallbackReport report;
  StatusOr<DeployedModel> deployed = DeployedModel::TryDeployWithFallback(model, {}, &report);
  ASSERT_TRUE(deployed.ok()) << deployed.status().ToString();
  EXPECT_FALSE(report.fell_back);
  EXPECT_EQ(report.requested, EncodingKind::kUnrolled);
  EXPECT_EQ(report.selected, EncodingKind::kUnrolled);
  EXPECT_TRUE(report.overflow.ok());
}

TEST(DeployFallbackTest, OversizedUnrolledFallsBackToBestFittingEncoding) {
  // 784x256 at density 0.115 is ~139 KB as unrolled code — past the 128 KB budget —
  // but ~25 KB as a delta stream.
  NeuroCModel model = MakeWideLayerModel(EncodingKind::kUnrolled, 784, 256, 0.115);
  DeployFallbackReport report;
  StatusOr<DeployedModel> deployed = DeployedModel::TryDeployWithFallback(model, {}, &report);
  ASSERT_TRUE(deployed.ok()) << deployed.status().ToString();
  EXPECT_TRUE(report.fell_back);
  EXPECT_EQ(report.requested, EncodingKind::kUnrolled);
  EXPECT_EQ(report.selected, EncodingKind::kDelta);  // fastest stream format that fits
  EXPECT_GT(report.requested_bytes, report.flash_budget);
  EXPECT_LE(report.selected_bytes, report.flash_budget);
  // The overflow is reported as a structured status naming the failure, not an abort.
  EXPECT_EQ(report.overflow.code(), ErrorCode::kResourceExhausted);
  EXPECT_NE(report.overflow.ToString().find("flash budget overflow"), std::string::npos);
  // The fallback deployment must still match the host bit-for-bit.
  Rng rng(5);
  std::vector<int8_t> expected;
  for (int t = 0; t < 3; ++t) {
    const std::vector<int8_t> input = MakeRandomInput(model.in_dim(), rng);
    model.Forward(input, expected);
    deployed->Predict(input);
    EXPECT_EQ(deployed->LastOutput(), expected);
  }
}

TEST(DeployFallbackTest, NothingFitsReportsResourceExhausted) {
  NeuroCModel model = MakeWideLayerModel(EncodingKind::kUnrolled, 784, 256, 0.115);
  MachineConfig tiny;
  tiny.flash_size = 4 * 1024;
  DeployFallbackReport report;
  StatusOr<DeployedModel> deployed =
      DeployedModel::TryDeployWithFallback(model, tiny, &report);
  ASSERT_FALSE(deployed.ok());
  EXPECT_EQ(deployed.status().code(), ErrorCode::kResourceExhausted);
  EXPECT_NE(deployed.status().ToString().find("no encoding fits"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end integration: train → quantize → deploy → simulate.
// ---------------------------------------------------------------------------

TEST(EndToEndTest, TrainQuantizeDeploySimulate) {
  Dataset all = MakeDigits8x8(900, 2024);
  Rng rng(3);
  auto [train, test] = all.Split(0.2, rng);
  NeuroCSpec spec;
  spec.hidden = {40};
  Network net = BuildNeuroC(64, 10, spec, rng);
  TrainConfig cfg;
  cfg.epochs = 8;
  cfg.batch_size = 32;
  cfg.learning_rate = 3e-3f;
  Train(net, train, test, cfg);

  NeuroCModel model = NeuroCModel::FromTrained(net, train);
  QuantizedDataset qtest = QuantizeInputs(test);
  const float host_acc = model.EvaluateAccuracy(qtest);
  EXPECT_GT(host_acc, 0.7f);

  DeployedModel deployed = DeployedModel::Deploy(model, Stm32f072rb().ToMachineConfig());
  // Simulated predictions must equal host predictions example by example.
  size_t sim_correct = 0;
  const size_t n = std::min<size_t>(qtest.num_examples(), 40);
  for (size_t i = 0; i < n; ++i) {
    std::span<const int8_t> x(qtest.example(i), qtest.input_dim);
    const int sim_class = deployed.Predict(x);
    EXPECT_EQ(sim_class, model.Predict(x)) << "example " << i;
    if (sim_class == qtest.labels[i]) {
      ++sim_correct;
    }
  }
  EXPECT_GT(static_cast<float>(sim_correct) / static_cast<float>(n), 0.6f);
  // Deployment fits the paper's board budget and runs in sane time.
  EXPECT_LE(deployed.report().program_bytes, 128u * 1024);
  EXPECT_GT(deployed.report().latency_ms, 0.01);
  EXPECT_LT(deployed.report().latency_ms, 200.0);
}

TEST(EndToEndTest, MlpBaselineDeploysAndMatches) {
  Dataset all = MakeDigits8x8(700, 2025);
  Rng rng(4);
  auto [train, test] = all.Split(0.2, rng);
  Network net = BuildMlp(64, 10, {{24}, 0.0f, false}, rng);
  TrainConfig cfg;
  cfg.epochs = 6;
  cfg.batch_size = 32;
  Train(net, train, test, cfg);
  MlpModel model = MlpModel::FromTrained(net, train);
  DeployedModel deployed = DeployedModel::Deploy(model, Stm32f072rb().ToMachineConfig());
  QuantizedDataset qtest = QuantizeInputs(test);
  for (size_t i = 0; i < 20; ++i) {
    std::span<const int8_t> x(qtest.example(i), qtest.input_dim);
    EXPECT_EQ(deployed.Predict(x), model.Predict(x)) << "example " << i;
  }
}

TEST(EndToEndTest, NeuroCBeatsMlpOnLatencyAtSimilarSetup) {
  // Miniature of the paper's headline: same task, Neuro-C inference is several times
  // faster and smaller than the dense MLP at a comparable hidden size.
  Dataset all = MakeDigits8x8(900, 2026);
  Rng rng(5);
  auto [train, test] = all.Split(0.2, rng);

  Network mlp = BuildMlp(64, 10, {{48}, 0.0f, false}, rng);
  NeuroCSpec nspec;
  nspec.hidden = {48};
  Network ncn = BuildNeuroC(64, 10, nspec, rng);
  TrainConfig cfg;
  cfg.epochs = 8;
  cfg.batch_size = 32;
  Train(mlp, train, test, cfg);
  Train(ncn, train, test, cfg);

  MlpModel mlp_q = MlpModel::FromTrained(mlp, train);
  NeuroCModel ncn_q = NeuroCModel::FromTrained(ncn, train);
  DeployedModel mlp_d = DeployedModel::Deploy(mlp_q);
  DeployedModel ncn_d = DeployedModel::Deploy(ncn_q);
  const double mlp_ms = mlp_d.MeasureLatencyMs();
  const double ncn_ms = ncn_d.MeasureLatencyMs();
  EXPECT_LT(ncn_ms, mlp_ms * 0.5) << "Neuro-C should be at least 2x faster";
  EXPECT_LT(ncn_d.report().program_bytes, mlp_d.report().program_bytes);
}

}  // namespace
}  // namespace neuroc
