// Shared helpers for the unit tests: seeded random-model construction (previously
// duplicated across the firmware, robustness and fault-campaign tests) and the global
// thread-pool guard. Layers are built sequentially from a single Rng, so a (seed, spec)
// pair fully determines the model.

#ifndef NEUROC_TESTS_TEST_UTIL_H_
#define NEUROC_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/core/synthetic.h"

namespace neuroc::testutil {

struct TestModelSpec {
  std::vector<size_t> dims = {64, 24, 10};  // in_dim, hidden..., out_dim
  double density = 0.2;
  EncodingKind encoding = EncodingKind::kBlock;
  bool has_scale = true;
  bool final_relu = false;  // hidden layers always use relu
};

inline NeuroCModel MakeTestModel(uint64_t seed, const TestModelSpec& spec = {}) {
  Rng rng(seed);
  std::vector<QuantNeuroCLayer> layers;
  for (size_t i = 0; i + 1 < spec.dims.size(); ++i) {
    SyntheticNeuroCLayerSpec layer;
    layer.in_dim = spec.dims[i];
    layer.out_dim = spec.dims[i + 1];
    layer.density = spec.density;
    layer.encoding = spec.encoding;
    layer.has_scale = spec.has_scale;
    layer.relu = i + 2 < spec.dims.size() ? true : spec.final_relu;
    layers.push_back(MakeSyntheticNeuroCLayer(layer, rng));
  }
  return NeuroCModel::FromLayers(std::move(layers));
}

// Restores the default (env-derived) global pool size when a test returns or throws.
struct GlobalThreadsGuard {
  ~GlobalThreadsGuard() { ThreadPool::SetGlobalThreads(0); }
};

}  // namespace neuroc::testutil

#endif  // NEUROC_TESTS_TEST_UTIL_H_
