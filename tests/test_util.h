// Shared helpers for the unit tests: seeded random-model construction (previously
// duplicated across the firmware, robustness and fault-campaign tests), the global
// thread-pool guard, and the FakeClient serve-protocol driver (tests that use it must
// link neuroc_serve). Layers are built sequentially from a single Rng, so a (seed, spec)
// pair fully determines the model.

#ifndef NEUROC_TESTS_TEST_UTIL_H_
#define NEUROC_TESTS_TEST_UTIL_H_

#include <poll.h>
#include <unistd.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/core/synthetic.h"
#include "src/serve/frame.h"

namespace neuroc::testutil {

struct TestModelSpec {
  std::vector<size_t> dims = {64, 24, 10};  // in_dim, hidden..., out_dim
  double density = 0.2;
  EncodingKind encoding = EncodingKind::kBlock;
  bool has_scale = true;
  bool final_relu = false;  // hidden layers always use relu
};

inline NeuroCModel MakeTestModel(uint64_t seed, const TestModelSpec& spec = {}) {
  Rng rng(seed);
  std::vector<QuantNeuroCLayer> layers;
  for (size_t i = 0; i + 1 < spec.dims.size(); ++i) {
    SyntheticNeuroCLayerSpec layer;
    layer.in_dim = spec.dims[i];
    layer.out_dim = spec.dims[i + 1];
    layer.density = spec.density;
    layer.encoding = spec.encoding;
    layer.has_scale = spec.has_scale;
    layer.relu = i + 2 < spec.dims.size() ? true : spec.final_relu;
    layers.push_back(MakeSyntheticNeuroCLayer(layer, rng));
  }
  return NeuroCModel::FromLayers(std::move(layers));
}

// Restores the default (env-derived) global pool size when a test returns or throws.
struct GlobalThreadsGuard {
  ~GlobalThreadsGuard() { ThreadPool::SetGlobalThreads(0); }
};

// Scripted serve-protocol client over one end of a socketpair: sends request frames (or
// raw bytes, for malformed-input tests) and reads response frames with a poll timeout so
// a server bug can never hang the test binary. Every read is bounded; responses arrive
// in completion order and are matched to requests by request_id, not stream position.
class FakeClient {
 public:
  explicit FakeClient(int fd) : fd_(fd) {}
  ~FakeClient() { Close(); }
  FakeClient(const FakeClient&) = delete;
  FakeClient& operator=(const FakeClient&) = delete;

  bool SendRequest(const ServeRequest& request) {
    const std::vector<uint8_t> frame = EncodeRequestFrame(request);
    return SendBytes(frame.data(), frame.size());
  }

  bool SendBytes(const void* data, size_t n) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    size_t off = 0;
    while (off < n) {
      const ssize_t w = ::write(fd_, p + off, n - off);
      if (w <= 0) {
        return false;
      }
      off += static_cast<size_t>(w);
    }
    return true;
  }

  // Blocks (bounded by `timeout_ms`) for the next response frame on the stream.
  StatusOr<ServeResponse> ReadResponse(int timeout_ms = 10000) {
    for (;;) {
      std::vector<uint8_t> payload;
      StatusOr<bool> got = reader_.Next(&payload);
      if (!got.ok()) {
        return got.status();
      }
      if (*got) {
        return DecodeResponsePayload(payload);
      }
      pollfd pfd{fd_, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, timeout_ms);
      if (ready <= 0) {
        return Status(ErrorCode::kDeadlineExceeded, "FakeClient: response timeout");
      }
      uint8_t buf[4096];
      const ssize_t n = ::read(fd_, buf, sizeof(buf));
      if (n <= 0) {
        return Status(ErrorCode::kIoError, "FakeClient: connection closed");
      }
      reader_.Feed(std::span<const uint8_t>(buf, static_cast<size_t>(n)));
    }
  }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
  FrameReader reader_;
};

}  // namespace neuroc::testutil

#endif  // NEUROC_TESTS_TEST_UTIL_H_
