// Predecoded-instruction cache: the cached fetch path must be an invisible optimization.
// Cycles, instruction counts, op histograms, memory statistics, heatmaps, probe callbacks
// and trace dumps all have to be bit-identical to the legacy decode-every-step
// interpreter, and any host write into flash must invalidate the cache.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/core/encoding.h"

#include "src/core/synthetic.h"
#include "src/isa/assembler.h"
#include "src/runtime/deployed_model.h"
#include "src/sim/machine.h"

namespace neuroc {
namespace {

constexpr uint32_t kFlash = 0x08000000;
constexpr uint32_t kRam = 0x20000000;

NeuroCModel MakeModel(uint64_t seed, EncodingKind kind) {
  Rng rng(seed);
  SyntheticNeuroCLayerSpec l0;
  l0.in_dim = 64;
  l0.out_dim = 24;
  l0.density = 0.2;
  l0.encoding = kind;
  SyntheticNeuroCLayerSpec l1 = l0;
  l1.in_dim = 24;
  l1.out_dim = 10;
  l1.relu = false;
  std::vector<QuantNeuroCLayer> layers;
  layers.push_back(MakeSyntheticNeuroCLayer(l0, rng));
  layers.push_back(MakeSyntheticNeuroCLayer(l1, rng));
  return NeuroCModel::FromLayers(std::move(layers));
}

// Records every probe callback verbatim so the two decode paths can be compared
// observation by observation.
struct RecordingProbe : CpuProbe {
  struct Retire {
    uint32_t addr;
    Op op;
    uint32_t cycles;
    bool operator==(const Retire&) const = default;
  };
  std::vector<Retire> retires;
  void OnRetire(uint32_t addr, Op op, uint32_t cycles) override {
    retires.push_back({addr, op, cycles});
  }
};

class DecodeCacheParityTest : public ::testing::TestWithParam<EncodingKind> {};

TEST_P(DecodeCacheParityTest, FullInferenceBitIdenticalToLegacyPath) {
  const EncodingKind kind = GetParam();
  DeployedModel cached = DeployedModel::Deploy(MakeModel(21, kind));
  DeployedModel legacy = DeployedModel::Deploy(MakeModel(21, kind));
  ASSERT_TRUE(cached.machine().cpu().decode_cache_enabled());
  legacy.machine().cpu().EnableDecodeCache(false);

  cached.machine().memory().EnableHeatmap(64);
  legacy.machine().memory().EnableHeatmap(64);
  RecordingProbe cached_probe;
  RecordingProbe legacy_probe;
  cached.machine().cpu().set_probe(&cached_probe);
  legacy.machine().cpu().set_probe(&legacy_probe);

  Rng rng(5);
  for (int rep = 0; rep < 3; ++rep) {
    const std::vector<int8_t> input = MakeRandomInput(cached.input_dim(), rng);
    EXPECT_EQ(cached.Predict(input), legacy.Predict(input));
    EXPECT_EQ(cached.report().cycles_per_inference, legacy.report().cycles_per_inference);
    EXPECT_EQ(cached.LastOutput(), legacy.LastOutput());
  }

  const Cpu& cc = cached.machine().cpu();
  const Cpu& lc = legacy.machine().cpu();
  EXPECT_EQ(cc.cycles(), lc.cycles());
  EXPECT_EQ(cc.instructions(), lc.instructions());
  EXPECT_EQ(cc.op_histogram(), lc.op_histogram());

  const MemAccessStats& cs = cached.machine().memory().stats();
  const MemAccessStats& ls = legacy.machine().memory().stats();
  EXPECT_EQ(cs.flash_reads, ls.flash_reads);
  EXPECT_EQ(cs.sram_reads, ls.sram_reads);
  EXPECT_EQ(cs.sram_writes, ls.sram_writes);

  const MemHeatmap& ch = cached.machine().memory().heatmap();
  const MemHeatmap& lh = legacy.machine().memory().heatmap();
  EXPECT_EQ(ch.flash_reads, lh.flash_reads);
  EXPECT_EQ(ch.sram_reads, lh.sram_reads);
  EXPECT_EQ(ch.sram_writes, lh.sram_writes);

  EXPECT_EQ(cached_probe.retires, legacy_probe.retires);
}

INSTANTIATE_TEST_SUITE_P(AllEncodings, DecodeCacheParityTest,
                         ::testing::ValuesIn(kAllEncodingKinds));

TEST(DecodeCacheTest, FlashWriteInvalidatesCache) {
  Machine m;
  const AssembledProgram a = Assemble("movs r0, #1\nbx lr\n", kFlash);
  m.LoadBytes(kFlash, a.bytes);
  m.CallFunction(kFlash, {});
  EXPECT_EQ(m.ReturnValue(), 1u);

  // Full reload at the same address must be picked up...
  const AssembledProgram b = Assemble("movs r0, #9\nbx lr\n", kFlash);
  m.LoadBytes(kFlash, b.bytes);
  m.CallFunction(kFlash, {});
  EXPECT_EQ(m.ReturnValue(), 9u);

  // ...as must a single patched halfword (movs r0, #9 -> movs r0, #5).
  const AssembledProgram c = Assemble("movs r0, #5\n", kFlash);
  m.LoadBytes(kFlash, std::span<const uint8_t>(c.bytes.data(), 2));
  m.CallFunction(kFlash, {});
  EXPECT_EQ(m.ReturnValue(), 5u);
}

TEST(DecodeCacheTest, FlashGenerationTracksFlashWritesOnly) {
  MemoryMap mem(kFlash, 1024, kRam, 1024);
  const uint64_t g0 = mem.flash_generation();
  const uint8_t bytes[2] = {0x01, 0x20};
  mem.HostWrite(kRam, bytes);
  EXPECT_EQ(mem.flash_generation(), g0);  // SRAM loads don't invalidate
  mem.HostWrite(kFlash + 16, bytes);
  EXPECT_GT(mem.flash_generation(), g0);
  EXPECT_GE(mem.flash_high_water(), 18u);
}

TEST(DecodeCacheTest, SramExecutionMatchesLegacyPath) {
  // Code executing from SRAM bypasses the flash decode cache; both paths must agree on
  // result and cycle count (no flash wait states on SRAM fetches).
  const AssembledProgram p = Assemble("adds r0, r0, r1\nbx lr\n", kRam);
  Machine cached;
  Machine legacy;
  legacy.cpu().EnableDecodeCache(false);
  cached.LoadBytes(kRam, p.bytes);
  legacy.LoadBytes(kRam, p.bytes);
  const uint64_t cached_cycles = cached.CallFunction(kRam, {30, 12});
  const uint64_t legacy_cycles = legacy.CallFunction(kRam, {30, 12});
  EXPECT_EQ(cached.ReturnValue(), 42u);
  EXPECT_EQ(legacy.ReturnValue(), 42u);
  EXPECT_EQ(cached_cycles, legacy_cycles);
  EXPECT_EQ(cached.cpu().instructions(), legacy.cpu().instructions());
}

TEST(DecodeCacheTest, TraceDumpsIdenticalAcrossPaths) {
  const std::string src = "movs r0, #3\nmovs r1, #4\nadds r0, r0, r1\nbx lr\n";
  const AssembledProgram p = Assemble(src, kFlash);
  Machine cached;
  Machine legacy;
  legacy.cpu().EnableDecodeCache(false);
  cached.cpu().EnableTrace(8);
  legacy.cpu().EnableTrace(8);
  cached.LoadBytes(kFlash, p.bytes);
  legacy.LoadBytes(kFlash, p.bytes);
  cached.CallFunction(kFlash, {});
  legacy.CallFunction(kFlash, {});
  const std::string cached_dump = cached.cpu().DumpTrace();
  EXPECT_EQ(cached_dump, legacy.cpu().DumpTrace());
  EXPECT_NE(cached_dump.find("adds r0, r0, r1"), std::string::npos);
}

// Regression: a BL prefix halfword (0xF000) sitting on the last mapped flash halfword used
// to abort with a misleading "unmapped address" memory fault *before* the trace entry was
// recorded, so the faulting instruction never appeared in the dump. It must be reported as
// an undefined instruction, with the faulting halfword in the dump exactly once.
void RunWidePrefixAtFlashEnd(bool use_cache) {
  MachineConfig cfg;
  cfg.flash_size = 1024;
  Machine m(cfg);
  m.cpu().EnableDecodeCache(use_cache);
  m.cpu().EnableTrace(8);
  const uint32_t last_halfword = kFlash + cfg.flash_size - 2;
  const uint8_t bl_prefix[2] = {0x00, 0xF0};
  m.LoadBytes(last_halfword, bl_prefix);
  m.CallFunction(last_halfword, {});
}

TEST(DecodeCacheDeathTest, WidePrefixAtFlashEndFaultsAsUndefinedWithTrace) {
  // One trace line (the faulting instruction), then the undefined-instruction report —
  // i.e. the faulting halfword appears in the dump exactly once, as the last entry.
  const char* expected =
      "recent instructions:\n"
      "  080003fe: f000[^\n]*\n"
      "simulator: undefined instruction 0xf000 at 0x080003fe";
  EXPECT_DEATH(RunWidePrefixAtFlashEnd(/*use_cache=*/true), expected);
  EXPECT_DEATH(RunWidePrefixAtFlashEnd(/*use_cache=*/false), expected);
}

}  // namespace
}  // namespace neuroc
