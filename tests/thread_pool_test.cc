// ThreadPool / ParallelFor semantics: chunk coverage and disjointness, grain behaviour,
// in-line degradation (single-threaded pool, tiny ranges, nested calls) and global-pool
// resizing. The determinism story of every kernel in the repo rests on these properties.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/thread_pool.h"
#include "tests/test_util.h"

namespace neuroc {
namespace {

using testutil::GlobalThreadsGuard;

TEST(ThreadPoolTest, ChunksCoverRangeExactlyOnce) {
  GlobalThreadsGuard guard;
  for (unsigned threads : {1u, 2u, 4u}) {
    ThreadPool::SetGlobalThreads(threads);
    for (size_t n : {size_t{1}, size_t{7}, size_t{64}, size_t{1000}}) {
      for (size_t grain : {size_t{1}, size_t{8}, size_t{2000}}) {
        std::vector<std::atomic<int>> hits(n);
        for (auto& h : hits) {
          h.store(0);
        }
        ParallelFor(0, n, grain, [&](size_t b, size_t e) {
          for (size_t i = b; i < e; ++i) {
            hits[i].fetch_add(1);
          }
        });
        for (size_t i = 0; i < n; ++i) {
          EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads << " n=" << n
                                       << " grain=" << grain << " i=" << i;
        }
      }
    }
  }
}

TEST(ThreadPoolTest, ChunksAreDisjointOrderedRanges) {
  GlobalThreadsGuard guard;
  ThreadPool::SetGlobalThreads(4);
  std::mutex mu;
  std::vector<std::pair<size_t, size_t>> chunks;
  const size_t n = 500;
  const size_t grain = 16;
  ParallelFor(0, n, grain, [&](size_t b, size_t e) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(b, e);
  });
  std::sort(chunks.begin(), chunks.end());
  ASSERT_FALSE(chunks.empty());
  EXPECT_EQ(chunks.front().first, 0u);
  EXPECT_EQ(chunks.back().second, n);
  size_t covered = 0;
  for (size_t c = 0; c < chunks.size(); ++c) {
    EXPECT_LT(chunks[c].first, chunks[c].second);
    if (c > 0) {
      EXPECT_EQ(chunks[c].first, chunks[c - 1].second) << "gap or overlap between chunks";
    }
    covered += chunks[c].second - chunks[c].first;
  }
  EXPECT_EQ(covered, n);
  // Every chunk holds at least `grain` indices, so there are at most n/grain of them.
  EXPECT_LE(chunks.size(), n / grain);
}

TEST(ThreadPoolTest, SmallRangeRunsInlineAsOneChunk) {
  GlobalThreadsGuard guard;
  ThreadPool::SetGlobalThreads(4);
  const auto caller = std::this_thread::get_id();
  int calls = 0;
  ParallelFor(0, 10, /*grain=*/100, [&](size_t b, size_t e) {
    ++calls;
    EXPECT_EQ(b, 0u);
    EXPECT_EQ(e, 10u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, EmptyRangeNeverInvokesBody) {
  GlobalThreadsGuard guard;
  ThreadPool::SetGlobalThreads(4);
  int calls = 0;
  ParallelFor(5, 5, 1, [&](size_t, size_t) { ++calls; });
  ParallelFor(7, 3, 1, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, SingleThreadedPoolRunsOnCallingThread) {
  GlobalThreadsGuard guard;
  ThreadPool::SetGlobalThreads(1);
  const auto caller = std::this_thread::get_id();
  int calls = 0;
  ParallelFor(0, 10000, 1, [&](size_t, size_t) {
    ++calls;  // safe: everything runs in-line on this thread
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
  EXPECT_EQ(calls, 1);  // in-line mode gets the whole range as one chunk
}

TEST(ThreadPoolTest, NestedParallelForDegradesToInline) {
  GlobalThreadsGuard guard;
  ThreadPool::SetGlobalThreads(4);
  EXPECT_FALSE(ThreadPool::InsideChunk());
  std::atomic<int> outer_chunks{0};
  std::atomic<int> inner_total{0};
  ParallelFor(0, 64, 8, [&](size_t, size_t) {
    EXPECT_TRUE(ThreadPool::InsideChunk());
    outer_chunks.fetch_add(1);
    const auto me = std::this_thread::get_id();
    int inner_calls = 0;
    ParallelFor(0, 1000, 1, [&](size_t b, size_t e) {
      ++inner_calls;  // in-line: no concurrent access
      EXPECT_EQ(std::this_thread::get_id(), me);
      inner_total.fetch_add(static_cast<int>(e - b));
    });
    EXPECT_EQ(inner_calls, 1);  // nested call must not re-enter the pool
  });
  EXPECT_FALSE(ThreadPool::InsideChunk());
  EXPECT_EQ(inner_total.load(), outer_chunks.load() * 1000);
}

TEST(ThreadPoolTest, SetGlobalThreadsResizesAndZeroRestoresDefault) {
  GlobalThreadsGuard guard;
  ThreadPool::SetGlobalThreads(3);
  EXPECT_EQ(ThreadPool::Global().num_threads(), 3u);
  ThreadPool::SetGlobalThreads(1);
  EXPECT_EQ(ThreadPool::Global().num_threads(), 1u);
  ThreadPool::SetGlobalThreads(0);
  EXPECT_EQ(ThreadPool::Global().num_threads(), DefaultThreadCount());
}

TEST(ThreadPoolTest, DefaultThreadCountReadsEnvironment) {
  // DefaultThreadCount re-reads NEUROC_NUM_THREADS on every call; the pool itself is only
  // sized from it at creation / SetGlobalThreads(0) time.
  const char* prev = std::getenv("NEUROC_NUM_THREADS");
  const std::string saved = prev ? prev : "";
  setenv("NEUROC_NUM_THREADS", "3", 1);
  EXPECT_EQ(DefaultThreadCount(), 3u);
  setenv("NEUROC_NUM_THREADS", "bogus", 1);
  EXPECT_GE(DefaultThreadCount(), 1u);  // unparsable → hardware concurrency fallback
  if (prev) {
    setenv("NEUROC_NUM_THREADS", saved.c_str(), 1);
  } else {
    unsetenv("NEUROC_NUM_THREADS");
  }
}

}  // namespace
}  // namespace neuroc
