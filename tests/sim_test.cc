#include <gtest/gtest.h>

#include "src/isa/assembler.h"
#include "src/sim/guest_fault.h"
#include "src/sim/machine.h"

namespace neuroc {
namespace {

constexpr uint32_t kFlash = 0x08000000;
constexpr uint32_t kRam = 0x20000000;

// Assembles, loads at flash base, calls with args, returns r0.
uint32_t RunProgram(const std::string& source, std::initializer_list<uint32_t> args,
                    Machine* machine_out = nullptr, uint64_t* cycles_out = nullptr) {
  static Machine machine_storage{MachineConfig{}};
  Machine local;
  Machine& m = machine_out != nullptr ? *machine_out : local;
  const AssembledProgram p = Assemble(source, kFlash);
  m.LoadBytes(kFlash, p.bytes);
  const uint64_t cycles = m.CallFunction(kFlash, args);
  if (cycles_out != nullptr) {
    *cycles_out = cycles;
  }
  (void)machine_storage;
  return m.ReturnValue();
}

TEST(MemoryMapTest, RegionsAndRoundTrip) {
  MemoryMap mem(kFlash, 128 * 1024, kRam, 16 * 1024);
  EXPECT_EQ(mem.RegionOf(kFlash), MemRegion::kFlash);
  EXPECT_EQ(mem.RegionOf(kRam + 100), MemRegion::kSram);
  EXPECT_EQ(mem.RegionOf(0), MemRegion::kNone);
  mem.Write32(kRam, 0xCAFEBABE);
  EXPECT_EQ(mem.Read32(kRam), 0xCAFEBABEu);
  mem.Write8(kRam + 4, 0x12);
  EXPECT_EQ(mem.Read8(kRam + 4), 0x12);
  mem.Write16(kRam + 6, 0x3456);
  EXPECT_EQ(mem.Read16(kRam + 6), 0x3456);
}

TEST(MemoryMapTest, LittleEndianLayout) {
  MemoryMap mem(kFlash, 1024, kRam, 1024);
  mem.Write32(kRam, 0x11223344);
  EXPECT_EQ(mem.Read8(kRam), 0x44);
  EXPECT_EQ(mem.Read8(kRam + 3), 0x11);
  EXPECT_EQ(mem.Read16(kRam), 0x3344);
}

TEST(MemoryMapTest, CpuWriteToFlashFaults) {
  // CPU-side faults are recoverable GuestFault throws (caught at the Machine boundary),
  // not process aborts.
  MemoryMap mem(kFlash, 1024, kRam, 1024);
  try {
    mem.Write32(kFlash, 1);
    FAIL() << "flash write did not fault";
  } catch (const GuestFault& gf) {
    EXPECT_EQ(gf.code, ErrorCode::kIllegalStore);
    EXPECT_EQ(gf.addr, kFlash);
    EXPECT_EQ(gf.message, "write to flash");
  }
}

TEST(MemoryMapTest, UnalignedAccessFaults) {
  MemoryMap mem(kFlash, 1024, kRam, 1024);
  EXPECT_THROW(mem.Read32(kRam + 2), GuestFault);
  EXPECT_THROW(mem.Read16(kRam + 1), GuestFault);
  try {
    mem.Read32(kRam + 2);
  } catch (const GuestFault& gf) {
    EXPECT_EQ(gf.code, ErrorCode::kUnalignedAccess);
    EXPECT_EQ(gf.addr, kRam + 2);
  }
}

TEST(MemoryMapTest, HostWriteMayTouchFlash) {
  MemoryMap mem(kFlash, 1024, kRam, 1024);
  const uint8_t bytes[4] = {1, 2, 3, 4};
  mem.HostWrite(kFlash + 8, bytes);
  EXPECT_EQ(mem.Read8(kFlash + 9), 2);
}

TEST(MemoryMapTest, AccessCountersTrackRegions) {
  MemoryMap mem(kFlash, 1024, kRam, 1024);
  const uint8_t b[4] = {0, 0, 0, 0};
  mem.HostWrite(kFlash, b);
  (void)mem.Read32(kFlash);
  (void)mem.Read8(kRam);
  mem.Write8(kRam, 1);
  EXPECT_EQ(mem.stats().flash_reads, 1u);
  EXPECT_EQ(mem.stats().sram_reads, 1u);
  EXPECT_EQ(mem.stats().sram_writes, 1u);
}

TEST(CpuTest, ReturnsConstant) {
  EXPECT_EQ(RunProgram("movs r0, #42\nbx lr\n", {}), 42u);
}

TEST(CpuTest, AddsArguments) {
  EXPECT_EQ(RunProgram("adds r0, r0, r1\nbx lr\n", {30, 12}), 42u);
}

TEST(CpuTest, SumLoopComputesGauss) {
  // sum 1..n via loop.
  const std::string src = R"(
    movs r1, #0      @ acc
    movs r2, #0      @ i
loop:
    adds r2, r2, #1
    adds r1, r1, r2
    cmp r2, r0
    blt loop
    movs r0, r1
    bx lr
  )";
  EXPECT_EQ(RunProgram(src, {10}), 55u);
  EXPECT_EQ(RunProgram(src, {100}), 5050u);
}

TEST(CpuTest, MultiplyAndShift) {
  EXPECT_EQ(RunProgram("muls r0, r1, r0\nbx lr\n", {6, 7}), 42u);
  EXPECT_EQ(RunProgram("lsls r0, r0, #4\nbx lr\n", {3}), 48u);
  EXPECT_EQ(RunProgram("asrs r0, r0, #2\nbx lr\n", {0xFFFFFFF0u}), 0xFFFFFFFCu);
}

TEST(CpuTest, SignedComparisonBranches) {
  // returns 1 if (int)r0 < (int)r1 else 0.
  const std::string src = R"(
    cmp r0, r1
    blt less
    movs r0, #0
    bx lr
less:
    movs r0, #1
    bx lr
  )";
  EXPECT_EQ(RunProgram(src, {static_cast<uint32_t>(-5), 3}), 1u);
  EXPECT_EQ(RunProgram(src, {3, static_cast<uint32_t>(-5)}), 0u);
  EXPECT_EQ(RunProgram(src, {3, 3}), 0u);
}

TEST(CpuTest, UnsignedComparisonBranches) {
  const std::string src = R"(
    cmp r0, r1
    bhi higher
    movs r0, #0
    bx lr
higher:
    movs r0, #1
    bx lr
  )";
  EXPECT_EQ(RunProgram(src, {0xFFFFFFFFu, 1}), 1u);  // unsigned: max > 1
  EXPECT_EQ(RunProgram(src, {1, 2}), 0u);
}

TEST(CpuTest, MemoryLoadStoreByteHalfWord) {
  const std::string src = R"(
    ldr r1, =0x20000100
    movs r2, #0xAB
    strb r2, [r1, #0]
    ldrb r0, [r1, #0]
    ldr r3, =0x1234
    strh r3, [r1, #2]
    ldrh r4, [r1, #2]
    adds r0, r0, r4
    bx lr
  )";
  EXPECT_EQ(RunProgram(src, {}), 0xABu + 0x1234u);
}

TEST(CpuTest, SignedLoadsSignExtend) {
  const std::string src = R"(
    ldr r1, =0x20000100
    movs r2, #0
    mvns r2, r2        @ r2 = 0xFFFFFFFF
    strb r2, [r1, #0]
    movs r3, #0
    ldrsb r0, [r1, r3]
    bx lr
  )";
  EXPECT_EQ(RunProgram(src, {}), 0xFFFFFFFFu);  // -1 sign-extended
}

TEST(CpuTest, PushPopPreserveAcrossCall) {
  const std::string src = R"(
    push {r4, r5, lr}
    movs r4, #21
    movs r5, #2
    muls r4, r5, r4
    movs r0, r4
    pop {r4, r5, pc}
  )";
  EXPECT_EQ(RunProgram(src, {}), 42u);
}

TEST(CpuTest, BlAndFunctionCall) {
  const std::string src = R"(
    push {lr}
    bl helper
    adds r0, r0, #1
    pop {pc}
helper:
    movs r0, #41
    bx lr
  )";
  EXPECT_EQ(RunProgram(src, {}), 42u);
}

TEST(CpuTest, AdcSbcCarryChain) {
  // 64-bit add of (r0,r1) + (r2,r3) returning the high word.
  const std::string src = R"(
    adds r0, r0, r2   @ low
    adcs r1, r3       @ high with carry
    movs r0, r1
    bx lr
  )";
  EXPECT_EQ(RunProgram(src, {0xFFFFFFFFu, 0, 1, 0}), 1u);   // carry into high
  EXPECT_EQ(RunProgram(src, {5, 7, 5, 9}), 16u);            // no carry
}

TEST(CpuTest, SxtbUxtb) {
  EXPECT_EQ(RunProgram("sxtb r0, r0\nbx lr\n", {0x80u}), 0xFFFFFF80u);
  EXPECT_EQ(RunProgram("uxtb r0, r0\nbx lr\n", {0x1FFu}), 0xFFu);
  EXPECT_EQ(RunProgram("sxth r0, r0\nbx lr\n", {0x8000u}), 0xFFFF8000u);
}

TEST(CpuTest, RevByteSwap) {
  EXPECT_EQ(RunProgram("rev r0, r0\nbx lr\n", {0x11223344u}), 0x44332211u);
}

TEST(CpuTest, NegsAndFlags) {
  const std::string src = R"(
    rsbs r0, r0, #0
    bx lr
  )";
  EXPECT_EQ(RunProgram(src, {5}), static_cast<uint32_t>(-5));
}

TEST(CpuTest, RegisterShifts) {
  EXPECT_EQ(RunProgram("lsls r0, r1\nbx lr\n", {1, 8}), 256u);
  EXPECT_EQ(RunProgram("lsrs r0, r1\nbx lr\n", {256, 8}), 1u);
  EXPECT_EQ(RunProgram("asrs r0, r1\nbx lr\n", {0x80000000u, 31}), 0xFFFFFFFFu);
  // Shift by >= 32 zeroes (logical).
  EXPECT_EQ(RunProgram("lsls r0, r1\nbx lr\n", {1, 40}), 0u);
}

// ---------------------------------------------------------------------------
// Cycle accounting.
// ---------------------------------------------------------------------------

TEST(CycleModelTest, StraightLineAluCosts) {
  Machine m;
  uint64_t cycles = 0;
  RunProgram("movs r0, #1\nadds r0, r0, #1\nbx lr\n", {}, &m, &cycles);
  // movs(1) + adds(1) + bx(3).
  EXPECT_EQ(cycles, 5u);
}

TEST(CycleModelTest, LoadStoreCosts) {
  Machine m;
  uint64_t cycles = 0;
  RunProgram(R"(
    ldr r1, =0x20000000
    str r0, [r1, #0]
    ldr r0, [r1, #0]
    bx lr
  )", {7}, &m, &cycles);
  // ldr lit(2) + str(2) + ldr(2) + bx(3).
  EXPECT_EQ(cycles, 9u);
}

TEST(CycleModelTest, BranchTakenVsNotTaken) {
  Machine m;
  uint64_t cycles_not_taken = 0;
  RunProgram(R"(
    cmp r0, #5
    beq skip
    movs r0, #1
skip:
    bx lr
  )", {0}, &m, &cycles_not_taken);
  // cmp(1) + beq not taken(1) + movs(1) + bx(3) = 6.
  EXPECT_EQ(cycles_not_taken, 6u);

  Machine m2;
  uint64_t cycles_taken = 0;
  RunProgram(R"(
    cmp r0, #5
    beq skip
    movs r0, #1
skip:
    bx lr
  )", {5}, &m2, &cycles_taken);
  // cmp(1) + beq taken(3) + bx(3) = 7.
  EXPECT_EQ(cycles_taken, 7u);
}

TEST(CycleModelTest, MulConfigurableCost) {
  MachineConfig cfg;
  cfg.cycle_model = CycleModel::CortexM0SlowMul();
  Machine m(cfg);
  const AssembledProgram p = Assemble("muls r0, r1, r0\nbx lr\n", kFlash);
  m.LoadBytes(kFlash, p.bytes);
  const uint64_t cycles = m.CallFunction(kFlash, {3, 4});
  EXPECT_EQ(m.ReturnValue(), 12u);
  EXPECT_EQ(cycles, 32u + 3u);  // slow mul + bx
}

TEST(CycleModelTest, FlashWaitStatesIncreaseCycles) {
  MachineConfig fast;
  MachineConfig slow;
  slow.cycle_model.flash_wait_states = 1;
  const std::string src = "movs r0, #1\nmovs r0, #2\nmovs r0, #3\nbx lr\n";
  Machine mf(fast);
  Machine ms(slow);
  const AssembledProgram p = Assemble(src, kFlash);
  mf.LoadBytes(kFlash, p.bytes);
  ms.LoadBytes(kFlash, p.bytes);
  const uint64_t cf = mf.CallFunction(kFlash, {});
  const uint64_t cs = ms.CallFunction(kFlash, {});
  EXPECT_EQ(cs, cf + 4);  // one extra cycle per fetched instruction
}

TEST(CycleModelTest, PushPopCosts) {
  Machine m;
  uint64_t cycles = 0;
  RunProgram("push {r4, r5, lr}\npop {r4, r5, pc}\n", {}, &m, &cycles);
  // push 1+3, pop 1+3 + pc extra 3.
  EXPECT_EQ(cycles, 4u + 7u);
}

TEST(CycleModelTest, LatencyConversionAt8MHz) {
  Machine m;
  EXPECT_DOUBLE_EQ(m.CyclesToMs(8000), 1.0);
  EXPECT_DOUBLE_EQ(m.CyclesToMs(400000), 50.0);
}

TEST(MachineTest, InstructionBudgetGuardAborts) {
  MachineConfig cfg;
  cfg.max_instructions = 1000;
  Machine m(cfg);
  const AssembledProgram p = Assemble("spin: b spin\n", kFlash);
  m.LoadBytes(kFlash, p.bytes);
  EXPECT_DEATH(m.CallFunction(kFlash, {}), "instruction budget");
}

TEST(MachineTest, OpHistogramCountsRetiredInstructions) {
  Machine m;
  RunProgram("movs r0, #0\nmovs r1, #0\nadds r0, r0, r1\nbx lr\n", {}, &m);
  EXPECT_EQ(m.cpu().op_histogram()[static_cast<size_t>(Op::kMovImm)], 2u);
  EXPECT_EQ(m.cpu().op_histogram()[static_cast<size_t>(Op::kAddReg)], 1u);
  EXPECT_EQ(m.cpu().instructions(), 4u);
}

TEST(MachineTest, MemcpyRoutineMovesBytes) {
  // A classic byte-wise memcpy(dst, src, n) kernel.
  const std::string src = R"(
    @ r0 = dst, r1 = src, r2 = n
    movs r3, #0
loop:
    cmp r3, r2
    bge done
    ldrb r4, [r1, r3]
    strb r4, [r0, r3]
    adds r3, r3, #1
    b loop
done:
    bx lr
  )";
  Machine m;
  const AssembledProgram p = Assemble(src, kFlash);
  m.LoadBytes(kFlash, p.bytes);
  const uint8_t payload[5] = {10, 20, 30, 40, 50};
  m.LoadBytes(kRam + 64, payload);
  m.CallFunction(kFlash, {kRam, kRam + 64, 5});
  uint8_t out[5];
  m.memory().HostRead(kRam, out);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(out[i], payload[i]);
  }
}


TEST(CpuTest, LdmStmMultipleTransfer) {
  // stmia writes ascending registers; ldmia reads them back with writeback.
  const std::string src = R"(
    ldr r1, =0x20000100
    movs r2, #11
    movs r3, #22
    movs r4, #33
    stmia r1!, {r2, r3, r4}
    ldr r1, =0x20000100
    ldmia r1!, {r5, r6, r7}
    adds r0, r5, r6
    adds r0, r0, r7
    bx lr
  )";
  Machine m;
  const AssembledProgram p = Assemble(src, kFlash);
  m.LoadBytes(kFlash, p.bytes);
  m.CallFunction(kFlash, {});
  EXPECT_EQ(m.ReturnValue(), 66u);
  // Writeback advanced r1 by 12 past the base.
  EXPECT_EQ(m.cpu().reg(1), 0x20000100u + 12u);
  EXPECT_EQ(m.memory().Read32(0x20000100), 11u);
  EXPECT_EQ(m.memory().Read32(0x20000108), 33u);
}

TEST(CpuTest, LdmWithoutBaseInListWritesBack) {
  const std::string src = R"(
    ldr r1, =0x20000200
    movs r2, #5
    stmia r1!, {r2}
    mov r0, r1
    bx lr
  )";
  Machine m;
  const AssembledProgram p = Assemble(src, kFlash);
  m.LoadBytes(kFlash, p.bytes);
  m.CallFunction(kFlash, {});
  EXPECT_EQ(m.ReturnValue(), 0x20000204u);
}

TEST(CycleModelTest, LdmStmCostIsBasePlusCount) {
  Machine m;
  uint64_t cycles = 0;
  RunProgram(R"(
    ldr r1, =0x20000000
    movs r2, #1
    movs r3, #2
    stmia r1!, {r2, r3}
    bx lr
  )", {}, &m, &cycles);
  // ldr lit(2) + movs(1)x2 + stm(1+2) + bx(3) = 10.
  EXPECT_EQ(cycles, 10u);
}

}  // namespace
}  // namespace neuroc
