// Failure-injection and robustness tests: the harness must fail loudly — never silently —
// when firmware is corrupted, descriptors point outside mapped memory, or execution runs
// away. Silent mis-measurement is the failure mode a research harness can least afford.

#include <gtest/gtest.h>

#include "src/core/synthetic.h"
#include "src/isa/assembler.h"
#include "src/kernels/kernel_set.h"
#include "src/runtime/deployed_model.h"

namespace neuroc {
namespace {

constexpr uint32_t kFlash = 0x08000000;

NeuroCModel SmallModel(uint64_t seed) {
  Rng rng(seed);
  SyntheticNeuroCLayerSpec spec;
  spec.in_dim = 64;
  spec.out_dim = 16;
  spec.density = 0.2;
  std::vector<QuantNeuroCLayer> layers;
  layers.push_back(MakeSyntheticNeuroCLayer(spec, rng));
  return NeuroCModel::FromLayers(std::move(layers));
}

TEST(FaultInjectionTest, CorruptedKernelCodeAborts) {
  // Overwrite the kernel's first instructions with a value that decodes to UDF: execution
  // must abort with a diagnostic, not return garbage.
  NeuroCModel model = SmallModel(1);
  DeployedModel deployed = DeployedModel::Deploy(model);
  const uint8_t udf[2] = {0x00, 0xDE};  // udf #0
  deployed.machine().LoadBytes(kFlash, udf);
  std::vector<int8_t> input(64, 1);
  EXPECT_DEATH(deployed.Predict(input), "undefined instruction");
}

TEST(FaultInjectionTest, DescriptorPointingOutsideMemoryFaults) {
  NeuroCModel model = SmallModel(2);
  DeployedModel deployed = DeployedModel::Deploy(model);
  // Patch the first descriptor's input pointer to unmapped space.
  // Descriptor base = image base; find it by scanning: input addr word is at offset 17*4.
  // We instead corrupt via the known flash layout: descriptors start at the image base,
  // which is the first nonzero region after the kernel code. Use the machine's memory to
  // rewrite the input pointer of layer 0.
  // The deploy path placed descriptors at image_base; recover it from the report.
  const uint32_t image_base =
      kFlash + ((static_cast<uint32_t>(deployed.report().code_bytes) + 768u + 3u) & ~3u);
  const uint32_t bad_addr = 0x40000000;  // peripheral space: unmapped in the simulator
  const uint8_t bytes[4] = {
      static_cast<uint8_t>(bad_addr & 0xFF), static_cast<uint8_t>((bad_addr >> 8) & 0xFF),
      static_cast<uint8_t>((bad_addr >> 16) & 0xFF),
      static_cast<uint8_t>((bad_addr >> 24) & 0xFF)};
  deployed.machine().LoadBytes(image_base + kDescInputAddr * 4, bytes);
  std::vector<int8_t> input(64, 1);
  EXPECT_DEATH(deployed.Predict(input), "unmapped");
}

TEST(FaultInjectionTest, RunawayLoopHitsInstructionBudget) {
  MachineConfig cfg;
  cfg.max_instructions = 5000;
  Machine m(cfg);
  const AssembledProgram p = Assemble(R"(
    movs r0, #0
spin:
    adds r0, r0, #1
    b spin
  )", kFlash);
  m.LoadBytes(kFlash, p.bytes);
  EXPECT_DEATH(m.CallFunction(kFlash, {}), "instruction budget");
}

TEST(FaultInjectionTest, StackOverflowIntoUnmappedSpaceFaults) {
  // Recursive pushes walk SP below SRAM: the first out-of-range store must fault.
  Machine m;
  const AssembledProgram p = Assemble(R"(
loop:
    push {r4, r5, r6, r7}
    b loop
  )", kFlash);
  m.LoadBytes(kFlash, p.bytes);
  EXPECT_DEATH(m.CallFunction(kFlash, {}), "unmapped|past end");
}

TEST(FaultInjectionTest, ExecutingDataAsCodeIsDetected) {
  // Jumping into the model image (weights) either hits an undefined encoding or the
  // instruction budget — never a silent return.
  MachineConfig cfg;
  cfg.max_instructions = 200000;
  Machine m(cfg);
  // Fill a flash region with a byte pattern that decodes to UDF immediately.
  std::vector<uint8_t> junk(64, 0xDE);
  m.LoadBytes(kFlash, junk);
  EXPECT_DEATH(m.CallFunction(kFlash, {}), "undefined instruction|instruction budget");
}

TEST(RobustnessTest, SaturatedInputsProduceSaturatedButValidOutputs) {
  // Extreme inputs must flow through without overflow UB: outputs stay in int8 and the
  // simulator agrees with the host bit-for-bit.
  NeuroCModel model = SmallModel(3);
  DeployedModel deployed = DeployedModel::Deploy(model);
  for (int8_t fill : {int8_t{-128}, int8_t{127}}) {
    std::vector<int8_t> input(64, fill);
    std::vector<int8_t> host;
    model.Forward(input, host);
    deployed.Predict(input);
    EXPECT_EQ(deployed.LastOutput(), host);
  }
}

TEST(RobustnessTest, ZeroDensityLayerStillRuns) {
  // A layer whose adjacency is entirely zero: output is just requantized bias.
  Rng rng(4);
  SyntheticNeuroCLayerSpec spec;
  spec.in_dim = 32;
  spec.out_dim = 8;
  spec.density = 0.0;
  std::vector<QuantNeuroCLayer> layers;
  layers.push_back(MakeSyntheticNeuroCLayer(spec, rng));
  NeuroCModel model = NeuroCModel::FromLayers(std::move(layers));
  DeployedModel deployed = DeployedModel::Deploy(model);
  std::vector<int8_t> input(32, 55);
  std::vector<int8_t> host;
  model.Forward(input, host);
  deployed.Predict(input);
  EXPECT_EQ(deployed.LastOutput(), host);
}

TEST(RobustnessTest, SingleNeuronAndSingleInputEdges) {
  for (auto [in, out] : {std::pair<size_t, size_t>{1, 8}, {64, 1}, {1, 1}}) {
    Rng rng(in * 100 + out);
    SyntheticNeuroCLayerSpec spec;
    spec.in_dim = in;
    spec.out_dim = out;
    spec.density = 1.0;
    std::vector<QuantNeuroCLayer> layers;
    layers.push_back(MakeSyntheticNeuroCLayer(spec, rng));
    NeuroCModel model = NeuroCModel::FromLayers(std::move(layers));
    DeployedModel deployed = DeployedModel::Deploy(model);
    std::vector<int8_t> input(in, -3);
    std::vector<int8_t> host;
    model.Forward(input, host);
    deployed.Predict(input);
    EXPECT_EQ(deployed.LastOutput(), host) << in << "x" << out;
  }
}

TEST(RobustnessTest, RepeatedDeploymentsAreIndependent) {
  // Two deployments of different models on separate machines must not interfere.
  NeuroCModel a = SmallModel(10);
  NeuroCModel b = SmallModel(20);
  DeployedModel da = DeployedModel::Deploy(a);
  DeployedModel db = DeployedModel::Deploy(b);
  Rng rng(30);
  const std::vector<int8_t> input = MakeRandomInput(64, rng);
  std::vector<int8_t> ha, hb;
  a.Forward(input, ha);
  b.Forward(input, hb);
  da.Predict(input);
  db.Predict(input);
  EXPECT_EQ(da.LastOutput(), ha);
  EXPECT_EQ(db.LastOutput(), hb);
}

}  // namespace
}  // namespace neuroc
