// Failure-injection and robustness tests: the harness must fail loudly — never silently —
// when firmware is corrupted, descriptors point outside mapped memory, or execution runs
// away. Silent mis-measurement is the failure mode a research harness can least afford.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/synthetic.h"
#include "src/isa/assembler.h"
#include "src/kernels/kernel_set.h"
#include "src/runtime/deployed_model.h"
#include "tests/test_util.h"

namespace neuroc {
namespace {

constexpr uint32_t kFlash = 0x08000000;

NeuroCModel SmallModel(uint64_t seed) {
  testutil::TestModelSpec spec;
  spec.dims = {64, 16};
  spec.final_relu = true;
  return testutil::MakeTestModel(seed, spec);
}

TEST(FaultInjectionTest, CorruptedKernelCodeReturnsStructuredFault) {
  // Overwrite the kernel's first instructions with a value that decodes to UDF: execution
  // must surface a structured fault report, not return garbage.
  NeuroCModel model = SmallModel(1);
  DeployedModel deployed = DeployedModel::Deploy(model);
  const uint8_t udf[2] = {0x00, 0xDE};  // udf #0
  deployed.machine().LoadBytes(kFlash, udf);
  std::vector<int8_t> input(64, 1);
  StatusOr<int> pred = deployed.TryPredict(input);
  ASSERT_FALSE(pred.ok());
  ASSERT_NE(pred.status().fault(), nullptr);
  const FaultReport& fault = *pred.status().fault();
  EXPECT_EQ(fault.code, ErrorCode::kUndefinedInstruction);
  EXPECT_EQ(fault.instruction, 0xDE00u);
  EXPECT_NE(fault.message.find("undefined instruction"), std::string::npos);
  // The integrity layer attributes the corruption to the kernel section…
  const std::vector<std::string> bad = deployed.CorruptedSections();
  ASSERT_FALSE(bad.empty());
  EXPECT_EQ(bad[0], "kernel_code");
  // …and scrub-and-retry produces a clean prediction that matches the host reference.
  RecoveryReport rec = deployed.PredictWithRecovery(input);
  EXPECT_TRUE(rec.faulted);  // still corrupted on entry: first attempt faults again
  EXPECT_TRUE(rec.recovered);
  std::vector<int8_t> host;
  model.Forward(input, host);
  EXPECT_EQ(deployed.LastOutput(), host);
  EXPECT_TRUE(deployed.VerifyIntegrity().ok());
}

TEST(FaultInjectionTest, DescriptorPointingOutsideMemoryFaults) {
  NeuroCModel model = SmallModel(2);
  DeployedModel deployed = DeployedModel::Deploy(model);
  // Patch the first descriptor's input pointer to unmapped peripheral space; the kernel's
  // first load through it must fault with the bad address in the report.
  const uint32_t bad_addr = 0x40000000;  // peripheral space: unmapped in the simulator
  const uint8_t bytes[4] = {
      static_cast<uint8_t>(bad_addr & 0xFF), static_cast<uint8_t>((bad_addr >> 8) & 0xFF),
      static_cast<uint8_t>((bad_addr >> 16) & 0xFF),
      static_cast<uint8_t>((bad_addr >> 24) & 0xFF)};
  deployed.machine().LoadBytes(deployed.image_base() + kDescInputAddr * 4, bytes);
  std::vector<int8_t> input(64, 1);
  StatusOr<int> pred = deployed.TryPredict(input);
  ASSERT_FALSE(pred.ok());
  ASSERT_NE(pred.status().fault(), nullptr);
  const FaultReport& fault = *pred.status().fault();
  EXPECT_EQ(fault.code, ErrorCode::kUnmappedAccess);
  // The kernel faults on its first load through the redirected pointer — at or a few
  // elements past the patched base, depending on the access pattern.
  EXPECT_GE(fault.addr, bad_addr);
  EXPECT_LT(fault.addr, bad_addr + 64);
  // The corrupted word lives in the descriptor table, and the CRC layer says so.
  const std::vector<std::string> bad = deployed.CorruptedSections();
  EXPECT_NE(std::find(bad.begin(), bad.end(), "descriptors"), bad.end());
}

TEST(FaultInjectionTest, RunawayLoopHitsInstructionBudget) {
  MachineConfig cfg;
  cfg.max_instructions = 5000;
  Machine m(cfg);
  const AssembledProgram p = Assemble(R"(
    movs r0, #0
spin:
    adds r0, r0, #1
    b spin
  )", kFlash);
  m.LoadBytes(kFlash, p.bytes);
  StatusOr<uint64_t> cycles = m.TryCallFunction(kFlash, {});
  ASSERT_FALSE(cycles.ok());
  EXPECT_EQ(cycles.status().code(), ErrorCode::kInstructionBudgetExceeded);
  ASSERT_NE(cycles.status().fault(), nullptr);
  EXPECT_GE(cycles.status().fault()->instructions, 5000u);
  // last_fault() keeps the report for post-mortem use after the StatusOr is gone.
  EXPECT_EQ(m.last_fault().code, ErrorCode::kInstructionBudgetExceeded);
}

TEST(FaultInjectionTest, StackOverflowIntoUnmappedSpaceFaults) {
  // Recursive pushes walk SP below SRAM: the first out-of-range store must fault with the
  // offending stack address, which lies just below the RAM window.
  Machine m;
  const AssembledProgram p = Assemble(R"(
loop:
    push {r4, r5, r6, r7}
    b loop
  )", kFlash);
  m.LoadBytes(kFlash, p.bytes);
  StatusOr<uint64_t> cycles = m.TryCallFunction(kFlash, {});
  ASSERT_FALSE(cycles.ok());
  EXPECT_EQ(cycles.status().code(), ErrorCode::kUnmappedAccess);
  ASSERT_NE(cycles.status().fault(), nullptr);
  EXPECT_LT(cycles.status().fault()->addr, m.config().ram_base);
  EXPECT_GE(cycles.status().fault()->addr, m.config().ram_base - 64);
}

TEST(FaultInjectionTest, ExecutingDataAsCodeIsDetected) {
  // Jumping into data (0xDE byte fill decodes as UDF) must yield a structured fault —
  // never a silent return.
  MachineConfig cfg;
  cfg.max_instructions = 200000;
  Machine m(cfg);
  std::vector<uint8_t> junk(64, 0xDE);
  m.LoadBytes(kFlash, junk);
  StatusOr<uint64_t> cycles = m.TryCallFunction(kFlash, {});
  ASSERT_FALSE(cycles.ok());
  EXPECT_EQ(cycles.status().code(), ErrorCode::kUndefinedInstruction);
  EXPECT_EQ(cycles.status().fault()->pc, kFlash);
}

TEST(FaultInjectionTest, FaultReportCarriesTraceTailWhenTracingEnabled) {
  // With the trace ring on, the report's tail names the instructions leading up to the
  // fault — the raw material for post-mortem debugging.
  Machine m;
  m.cpu().EnableTrace(16);
  const AssembledProgram p = Assemble(R"(
    movs r0, #7
    udf #0
  )", kFlash);
  m.LoadBytes(kFlash, p.bytes);
  StatusOr<uint64_t> cycles = m.TryCallFunction(kFlash, {});
  ASSERT_FALSE(cycles.ok());
  ASSERT_NE(cycles.status().fault(), nullptr);
  EXPECT_NE(cycles.status().fault()->trace_tail.find("movs r0, #7"), std::string::npos);
}

TEST(HostInvariantDeathTest, TooManyCallArgumentsStillAborts) {
  // Guest faults are recoverable Status values, but host API misuse stays a hard
  // NEUROC_CHECK abort: passing more register arguments than AAPCS r0..r3 allows is a bug
  // in the caller, not a simulated-hardware fault.
  Machine m;
  EXPECT_DEATH(m.TryCallFunction(kFlash, {1, 2, 3, 4, 5}), "args.size");
}

TEST(RobustnessTest, SaturatedInputsProduceSaturatedButValidOutputs) {
  // Extreme inputs must flow through without overflow UB: outputs stay in int8 and the
  // simulator agrees with the host bit-for-bit.
  NeuroCModel model = SmallModel(3);
  DeployedModel deployed = DeployedModel::Deploy(model);
  for (int8_t fill : {int8_t{-128}, int8_t{127}}) {
    std::vector<int8_t> input(64, fill);
    std::vector<int8_t> host;
    model.Forward(input, host);
    deployed.Predict(input);
    EXPECT_EQ(deployed.LastOutput(), host);
  }
}

TEST(RobustnessTest, ZeroDensityLayerStillRuns) {
  // A layer whose adjacency is entirely zero: output is just requantized bias.
  Rng rng(4);
  SyntheticNeuroCLayerSpec spec;
  spec.in_dim = 32;
  spec.out_dim = 8;
  spec.density = 0.0;
  std::vector<QuantNeuroCLayer> layers;
  layers.push_back(MakeSyntheticNeuroCLayer(spec, rng));
  NeuroCModel model = NeuroCModel::FromLayers(std::move(layers));
  DeployedModel deployed = DeployedModel::Deploy(model);
  std::vector<int8_t> input(32, 55);
  std::vector<int8_t> host;
  model.Forward(input, host);
  deployed.Predict(input);
  EXPECT_EQ(deployed.LastOutput(), host);
}

TEST(RobustnessTest, SingleNeuronAndSingleInputEdges) {
  for (auto [in, out] : {std::pair<size_t, size_t>{1, 8}, {64, 1}, {1, 1}}) {
    Rng rng(in * 100 + out);
    SyntheticNeuroCLayerSpec spec;
    spec.in_dim = in;
    spec.out_dim = out;
    spec.density = 1.0;
    std::vector<QuantNeuroCLayer> layers;
    layers.push_back(MakeSyntheticNeuroCLayer(spec, rng));
    NeuroCModel model = NeuroCModel::FromLayers(std::move(layers));
    DeployedModel deployed = DeployedModel::Deploy(model);
    std::vector<int8_t> input(in, -3);
    std::vector<int8_t> host;
    model.Forward(input, host);
    deployed.Predict(input);
    EXPECT_EQ(deployed.LastOutput(), host) << in << "x" << out;
  }
}

TEST(RobustnessTest, RepeatedDeploymentsAreIndependent) {
  // Two deployments of different models on separate machines must not interfere.
  NeuroCModel a = SmallModel(10);
  NeuroCModel b = SmallModel(20);
  DeployedModel da = DeployedModel::Deploy(a);
  DeployedModel db = DeployedModel::Deploy(b);
  Rng rng(30);
  const std::vector<int8_t> input = MakeRandomInput(64, rng);
  std::vector<int8_t> ha, hb;
  a.Forward(input, ha);
  b.Forward(input, hb);
  da.Predict(input);
  db.Predict(input);
  EXPECT_EQ(da.LastOutput(), ha);
  EXPECT_EQ(db.LastOutput(), hb);
}

}  // namespace
}  // namespace neuroc
