#!/usr/bin/env bash
# Per-directory line-coverage report for a -DNEUROC_COVERAGE=ON build.
#
#   cmake -B build-cov -S . -DNEUROC_COVERAGE=ON
#   cmake --build build-cov -j
#   ctest --test-dir build-cov
#   tools/coverage.sh build-cov
#
# gcc builds leave .gcda note files next to the objects; the script prefers gcovr when
# installed and falls back to parsing raw `gcov -n` output. clang builds (source-based
# coverage) need LLVM_PROFILE_FILE="%p.profraw" exported around the ctest run; the script
# then merges the profiles and reports through llvm-cov.
set -euo pipefail

BUILD_DIR="${1:-build-cov}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

if [[ ! -d "$BUILD_DIR" ]]; then
  echo "error: build dir '$BUILD_DIR' not found (configure with -DNEUROC_COVERAGE=ON)" >&2
  exit 1
fi

# --- clang source-based coverage ---------------------------------------------------------
profraws=$(find "$BUILD_DIR" -name '*.profraw' 2>/dev/null || true)
if [[ -n "$profraws" ]]; then
  profdata="$BUILD_DIR/neuroc.profdata"
  # shellcheck disable=SC2086  # word-splitting the file list is intended
  llvm-profdata merge -sparse $profraws -o "$profdata"
  objects=()
  for t in "$BUILD_DIR"/tests/*_test "$BUILD_DIR"/tools/neuroc; do
    [[ -x "$t" ]] && objects+=(-object "$t")
  done
  llvm-cov report "${objects[@]}" -instr-profile="$profdata" \
    -ignore-filename-regex='(third_party|_deps|/usr/)'
  exit 0
fi

# --- gcc/gcov coverage -------------------------------------------------------------------
if ! find "$BUILD_DIR" -name '*.gcda' -print -quit | grep -q .; then
  echo "error: no coverage data under '$BUILD_DIR' — build with -DNEUROC_COVERAGE=ON and run ctest first" >&2
  exit 1
fi

if command -v gcovr >/dev/null 2>&1; then
  gcovr --root "$ROOT" --filter 'src/' --filter 'tools/' --print-summary "$BUILD_DIR"
  exit 0
fi

# Fallback: run gcov -n over every note file and aggregate "Lines executed" per source
# directory. A source compiled into several targets is counted once with its best run.
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT
find "$BUILD_DIR" -name '*.gcda' | while read -r gcda; do
  gcov -n -o "$(dirname "$gcda")" "$gcda" 2>/dev/null
done > "$raw"
python3 - "$ROOT" "$raw" <<'PY'
import re
import sys

root = sys.argv[1].rstrip("/") + "/"
best = {}  # source path -> (covered, total)
file_name = None
for line in open(sys.argv[2]):
    m = re.match(r"File '(.*)'", line.strip())
    if m:
        file_name = m.group(1)
        continue
    m = re.match(r"Lines executed:([0-9.]+)% of (\d+)", line.strip())
    if m and file_name:
        pct, total = float(m.group(1)), int(m.group(2))
        covered = round(pct * total / 100.0)
        if file_name.startswith(root) and "/_deps/" not in file_name:
            rel = file_name[len(root):]
            old = best.get(rel)
            if old is None or covered > old[0]:
                best[rel] = (covered, total)
        file_name = None

dirs = {}
for rel, (covered, total) in best.items():
    d = rel.rsplit("/", 1)[0] if "/" in rel else "."
    dc, dt = dirs.get(d, (0, 0))
    dirs[d] = (dc + covered, dt + total)

if not dirs:
    sys.exit("no project sources found in gcov output")
width = max(len(d) for d in dirs) + 2
print(f"{'directory':<{width}} {'lines':>12} {'coverage':>9}")
tc = tt = 0
for d in sorted(dirs):
    c, t = dirs[d]
    tc += c
    tt += t
    print(f"{d:<{width}} {c:>5}/{t:<6} {100.0 * c / t:>8.1f}%")
print(f"{'TOTAL':<{width}} {tc:>5}/{tt:<6} {100.0 * tc / tt:>8.1f}%")
PY
