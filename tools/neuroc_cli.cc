// `neuroc` — command-line front end for the library. Subcommands:
//
//   neuroc train   --dataset <name> [--hidden 128,64] [--density 0.12] [--epochs 8]
//                  [--tnn] [--seed N] [--metrics out.jsonl] --out model.ncm
//   neuroc eval    --model model.ncm --dataset <name> [--seed N]
//   neuroc inspect --model model.ncm
//   neuroc bench   --model model.ncm [--platform STM32F072RB]
//   neuroc profile --model model.ncm [--platform STM32F072RB] [--json out.json]
//                  [--trace out.trace] [--asm] [--mode legacy|cached|block]
//   neuroc deploy  --model model.ncm --format c|hex --out <path> [--prefix name]
//   neuroc faultcampaign [--trials N] [--seed N] [--fault bitflip|multibit|stuck0|stuck1]
//                  [--bits N] [--trigger pre|mid] [--regions a,b,..] [--encodings a,b,..]
//                  [--no-retry] [--no-snapshot-retry] [--no-redeploy] [--no-watchdog]
//                  [--dual-run] [--json out.json] [--smoke]
//   neuroc fuzz    --oracle kernel|isa|serde|frame [--seed N] [--cases N] [--json out.json]
//                  [--corpus-dir dir] [--no-minimize] | --replay case.fuzzcase
//                  | --case-seed 0x... | --smoke
//   neuroc serve   --models <dir> [--port N] [--max-batch N] [--cache N] [--queue N]
//   neuroc report  --in runs.jsonl [--json out.json]
//
// Every subcommand also accepts --metrics-out <runs.jsonl>: on exit it appends one
// metrics-registry run record (counters/gauges/histograms from this invocation) that
// `neuroc report` aggregates. Options may be spelled `--key value` or `--key=value`.
//
// Datasets: digits, mnist, fashion, cifar5, events (procedural; see src/data/synth.h).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <string>
#include <vector>

#include "src/core/adjacency_stats.h"
#include "src/core/model_serde.h"
#include "src/fuzz/fuzz.h"
#include "src/data/synth.h"
#include "src/obs/json_reader.h"
#include "src/obs/json_writer.h"
#include "src/obs/metrics.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"
#include "src/runtime/c_emitter.h"
#include "src/runtime/deployed_model.h"
#include "src/runtime/fault_campaign.h"
#include "src/runtime/firmware_image.h"
#include "src/runtime/platform.h"
#include "src/runtime/profile.h"
#include "src/serve/server.h"
#include "src/serve/service.h"
#include "src/train/metrics.h"
#include "src/train/trainer.h"

namespace neuroc {
namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  const char* Get(const std::string& key, const char* fallback = nullptr) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : it->second.c_str();
  }
  bool Has(const std::string& key) const { return options.count(key) > 0; }
};

int Usage() {
  std::fprintf(stderr,
               "usage: neuroc "
               "<train|eval|inspect|bench|profile|deploy|faultcampaign|fuzz|serve|report>"
               " [options]\n"
               "  train   --dataset <digits|mnist|fashion|cifar5|events> --out model.ncm\n"
               "          [--hidden 128,64] [--density 0.12] [--epochs 8] [--tnn] [--seed N]\n"
               "          [--metrics out.jsonl]\n"
               "  eval    --model model.ncm --dataset <name> [--seed N]\n"
               "  inspect --model model.ncm\n"
               "  bench   --model model.ncm [--platform STM32F072RB]\n"
               "  profile --model model.ncm [--platform STM32F072RB] [--json out.json]\n"
               "          [--trace out.trace] [--asm] [--mode <legacy|cached|block>]\n"
               "          [--encoding <csc|delta|mixed|block|unrolled>]\n"
               "  deploy  --model model.ncm --format <c|hex> --out <path> [--prefix name]\n"
               "          [--encoding <csc|delta|mixed|block|unrolled>]\n"
               "  faultcampaign [--trials N] [--seed N]\n"
               "          [--fault <bitflip|multibit|stuck0|stuck1>] [--bits N]\n"
               "          [--trigger <pre|mid>]\n"
               "          [--regions <kernel_code,descriptors,payload,sram>]\n"
               "          [--encodings <csc,delta,mixed,block,unrolled>] [--no-retry]\n"
               "          [--no-snapshot-retry] [--no-redeploy] [--no-watchdog]\n"
               "          [--dual-run] [--json out.json] [--smoke]\n"
               "  fuzz    --oracle <kernel|isa|serde|frame> [--seed N] [--cases N]\n"
               "          [--json out.json] [--corpus-dir dir] [--no-minimize]\n"
               "          | --replay case.fuzzcase | --case-seed 0xSEED | --smoke\n"
               "  serve   --models <dir of .ncm images> [--port N (default 7433)]\n"
               "          [--max-batch N] [--cache N] [--queue N]\n"
               "  report  --in runs.jsonl [--json out.json]\n"
               "every subcommand accepts --metrics-out runs.jsonl (append one run record)\n");
  return 2;
}

Dataset MakeDataset(const std::string& name, size_t count, uint64_t seed) {
  if (name == "digits") {
    return MakeDigits8x8(count, seed);
  }
  if (name == "mnist") {
    return MakeMnistLike(count, seed);
  }
  if (name == "fashion") {
    return MakeFashionLike(count, seed);
  }
  if (name == "cifar5") {
    return MakeCifar5Like(count, seed);
  }
  if (name == "events") {
    return MakeEventDetection(count, seed);
  }
  std::fprintf(stderr, "unknown dataset: %s\n", name.c_str());
  std::exit(2);
}

std::vector<size_t> ParseHidden(const std::string& s) {
  std::vector<size_t> widths;
  size_t pos = 0;
  while (pos < s.size()) {
    size_t end = s.find(',', pos);
    if (end == std::string::npos) {
      end = s.size();
    }
    widths.push_back(static_cast<size_t>(std::strtoul(s.substr(pos, end - pos).c_str(),
                                                      nullptr, 10)));
    pos = end + 1;
  }
  return widths;
}

int CmdTrain(const Args& args) {
  if (!args.Has("dataset") || !args.Has("out")) {
    return Usage();
  }
  const uint64_t seed = std::strtoull(args.Get("seed", "1"), nullptr, 10);
  Dataset all = MakeDataset(args.Get("dataset"), 4000, seed);
  Rng split_rng(seed + 1);
  auto [train, test] = all.Split(0.2, split_rng);

  NeuroCSpec spec;
  spec.hidden = ParseHidden(args.Get("hidden", "128"));
  spec.layer.ternary.target_density =
      static_cast<float>(std::strtod(args.Get("density", "0.12"), nullptr));
  spec.layer.use_per_neuron_scale = !args.Has("tnn");

  TrainConfig cfg;
  cfg.epochs = static_cast<int>(std::strtol(args.Get("epochs", "8"), nullptr, 10));
  cfg.batch_size = 64;
  cfg.learning_rate = 2e-3f;
  cfg.lr_decay = 0.9f;
  cfg.verbose = true;
  MetricsLogger metrics(args.Get("metrics", ""));
  if (metrics.ok()) {
    cfg.metrics = &metrics;
    std::printf("streaming per-epoch metrics to %s\n", metrics.path().c_str());
  }
  if (args.Has("trace")) {
    TraceRecorder::Global().set_enabled(true);
    TraceRecorder::Global().Start();
  }

  Rng rng(seed + 2);
  Network net =
      BuildNeuroC(train.input_dim(), static_cast<size_t>(train.num_classes), spec, rng);
  std::printf("training %s on %s (%zu train / %zu test)\n", net.Summary().c_str(),
              all.name.c_str(), train.num_examples(), test.num_examples());
  const TrainResult result = Train(net, train, test, cfg);
  if (args.Has("trace") &&
      TraceRecorder::Global().WriteChromeTrace(args.Get("trace"))) {
    std::printf("wrote %s\n", args.Get("trace"));
  }
  NeuroCModel model = NeuroCModel::FromTrained(net, train);
  const float q_acc = model.EvaluateAccuracy(QuantizeInputs(test));
  std::printf("float accuracy %.4f | int8 accuracy %.4f\n", result.final_test_accuracy,
              q_acc);
  if (!SaveModel(model, args.Get("out"))) {
    std::fprintf(stderr, "failed to write %s\n", args.Get("out"));
    return 1;
  }
  std::printf("saved %s (%zu layers, %zu weight bytes)\n", args.Get("out"),
              model.layers().size(), model.WeightBytes());
  return 0;
}

StatusOr<NeuroCModel> LoadOrComplain(const Args& args) {
  if (!args.Has("model")) {
    Usage();
    return Status(ErrorCode::kInvalidArgument, "missing --model");
  }
  StatusOr<NeuroCModel> model = LoadNeuroCModel(args.Get("model"));
  if (!model.ok()) {
    std::fprintf(stderr, "cannot load model %s: %s\n", args.Get("model"),
                 model.status().ToString().c_str());
  }
  return model;
}

int CmdEval(const Args& args) {
  auto model = LoadOrComplain(args);
  if (!model || !args.Has("dataset")) {
    return model ? Usage() : 1;
  }
  const uint64_t seed = std::strtoull(args.Get("seed", "1"), nullptr, 10);
  Dataset all = MakeDataset(args.Get("dataset"), 4000, seed);
  Rng split_rng(seed + 1);
  auto [train, test] = all.Split(0.2, split_rng);
  (void)train;
  if (test.input_dim() != model->in_dim()) {
    std::fprintf(stderr, "model expects %zu inputs, dataset has %zu\n", model->in_dim(),
                 test.input_dim());
    return 1;
  }
  const QuantizedDataset q = QuantizeInputs(test);
  ConfusionMatrix cm(static_cast<int>(model->out_dim()));
  for (size_t i = 0; i < q.num_examples(); ++i) {
    cm.Add(q.labels[i], model->Predict({q.example(i), q.input_dim}));
  }
  std::printf("%s", cm.Format().c_str());
  return 0;
}

int CmdInspect(const Args& args) {
  auto model = LoadOrComplain(args);
  if (!model) {
    return 1;
  }
  std::printf("model: %s\n", model->Summary().c_str());
  std::printf("weight bytes: %zu; estimated program memory: %zu B\n", model->WeightBytes(),
              DeployedModel::EstimateProgramBytes(*model));
  for (size_t k = 0; k < model->layers().size(); ++k) {
    const QuantNeuroCLayer& l = model->layers()[k];
    std::printf("\nlayer %zu (%s, shift %d, in_frac %d -> out_frac %d):\n%s", k,
                EncodingKindName(l.encoding->kind()), l.requant_shift, l.in_frac, l.out_frac,
                FormatAdjacencyStats(AnalyzeAdjacency(l.encoding->Decode())).c_str());
  }
  return 0;
}

int CmdBench(const Args& args) {
  auto model = LoadOrComplain(args);
  if (!model) {
    return 1;
  }
  const PlatformSpec& platform = PlatformByName(args.Get("platform", "STM32F072RB"));
  const size_t bytes = DeployedModel::EstimateProgramBytes(*model);
  std::printf("platform: %s (%s @ %.0f MHz, %u KB flash)\n", platform.name.c_str(),
              platform.core.c_str(), platform.clock_hz / 1e6, platform.flash_bytes / 1024);
  if (bytes > platform.flash_bytes) {
    std::printf("NOT DEPLOYABLE: needs %zu B of %u B flash\n", bytes, platform.flash_bytes);
    return 1;
  }
  DeployedModel deployed = DeployedModel::Deploy(*model, platform.ToMachineConfig());
  const ExecutionProfile profile = ProfileInference(deployed);
  std::printf("latency: %.3f ms (%llu cycles)\n", deployed.report().latency_ms,
              static_cast<unsigned long long>(deployed.report().cycles_per_inference));
  std::printf("program memory: %zu B | RAM buffers: %zu B\n",
              deployed.report().program_bytes, deployed.report().ram_bytes);
  std::printf("%s", FormatProfile(profile).c_str());
  return 0;
}

bool ParseEncodingKind(const std::string& text, EncodingKind* out);

// Applies --encoding=<kind>: re-encodes every layer of the loaded model in place, so any
// model file can be profiled or exported under any of the five encodings.
bool MaybeReencode(const Args& args, NeuroCModel* model) {
  if (!args.Has("encoding")) {
    return true;
  }
  EncodingKind kind;
  if (!ParseEncodingKind(args.Get("encoding"), &kind)) {
    std::fprintf(stderr, "unknown encoding: %s (csc|delta|mixed|block|unrolled)\n",
                 args.Get("encoding"));
    return false;
  }
  *model = ReencodeModel(*model, kind);
  return true;
}

int CmdProfile(const Args& args) {
  auto model = LoadOrComplain(args);
  if (!model) {
    return 1;
  }
  if (!MaybeReencode(args, &*model)) {
    return 2;
  }
  const PlatformSpec& platform = PlatformByName(args.Get("platform", "STM32F072RB"));
  const size_t bytes = DeployedModel::EstimateProgramBytes(*model);
  std::printf("platform: %s (%s @ %.0f MHz, %u KB flash)\n", platform.name.c_str(),
              platform.core.c_str(), platform.clock_hz / 1e6, platform.flash_bytes / 1024);
  ProfileMode mode = ProfileMode::kBlock;
  if (args.Has("mode") && !ParseProfileMode(args.Get("mode"), &mode)) {
    std::fprintf(stderr, "unknown profile mode: %s (legacy|cached|block)\n",
                 args.Get("mode"));
    return 2;
  }
  // Oversized models fall back to the fastest encoding that fits (unrolled kernels are
  // the usual reason: they trade flash for cycles).
  DeployFallbackReport fallback;
  StatusOr<DeployedModel> deployed_or =
      DeployedModel::TryDeployWithFallback(*model, platform.ToMachineConfig(), &fallback);
  if (!deployed_or.ok()) {
    std::printf("NOT DEPLOYABLE: needs %zu B of %u B flash (%s)\n", bytes,
                platform.flash_bytes, deployed_or.status().ToString().c_str());
    return 1;
  }
  if (fallback.fell_back) {
    std::printf("flash fallback: %s (%zu B) -> %s (%zu B)\n",
                EncodingKindName(fallback.requested), fallback.requested_bytes,
                EncodingKindName(fallback.selected), fallback.selected_bytes);
  }
  DeployedModel deployed = std::move(*deployed_or);
  const InferenceProfile profile = ProfileInferenceDetailed(deployed, 64, mode);
  std::printf("latency: %.3f ms (%llu cycles)\n", deployed.report().latency_ms,
              static_cast<unsigned long long>(deployed.report().cycles_per_inference));
  std::printf("%s", FormatInferenceProfile(profile, deployed, args.Has("asm")).c_str());

  if (args.Has("json")) {
    JsonWriter w;
    WriteInferenceProfileJson(w, profile, deployed);
    if (WriteStringToFile(args.Get("json"), w.str() + "\n")) {
      std::printf("wrote %s\n", args.Get("json"));
    }
  }
  if (args.Has("trace")) {
    // Cycle-exact per-layer timeline on track "sim": simulated cycles scaled to
    // microseconds at the platform clock, loadable in Perfetto / chrome://tracing.
    TraceRecorder rec;
    rec.set_enabled(true);
    rec.Start();
    const double us_per_cycle = 1e6 / platform.clock_hz;
    double ts_us = 0.0;
    double total_us = 0.0;
    for (const uint64_t c : profile.layer_cycles) {
      total_us += static_cast<double>(c) * us_per_cycle;
    }
    rec.AddCompleteEvent("inference", "sim", 0.0, total_us);
    for (size_t k = 0; k < profile.layer_cycles.size(); ++k) {
      const double dur_us = static_cast<double>(profile.layer_cycles[k]) * us_per_cycle;
      char name[32];
      std::snprintf(name, sizeof(name), "layer_%zu", k);
      rec.AddCompleteEvent(name, "sim", ts_us, dur_us);
      ts_us += dur_us;
    }
    if (rec.WriteChromeTrace(args.Get("trace"))) {
      std::printf("wrote %s\n", args.Get("trace"));
    }
  }
  return 0;
}

int CmdDeploy(const Args& args) {
  auto model = LoadOrComplain(args);
  if (!model || !args.Has("format") || !args.Has("out")) {
    return model ? Usage() : 1;
  }
  if (!MaybeReencode(args, &*model)) {
    return 2;
  }
  const std::string format = args.Get("format");
  if (format == "c") {
    const std::string prefix = args.Get("prefix", "model");
    const CSources sources = EmitCSources(*model, prefix);
    std::filesystem::create_directories(args.Get("out"));
    const std::string h = std::string(args.Get("out")) + "/" + prefix + ".h";
    const std::string c = std::string(args.Get("out")) + "/" + prefix + ".c";
    std::ofstream(h) << sources.header;
    std::ofstream(c) << sources.source;
    std::printf("wrote %s and %s\n", h.c_str(), c.c_str());
    return 0;
  }
  if (format == "hex") {
    const std::string hex = FirmwareHexForModel(*model);
    std::ofstream(args.Get("out")) << hex;
    std::printf("wrote %s (%zu bytes of Intel HEX)\n", args.Get("out"), hex.size());
    return 0;
  }
  std::fprintf(stderr, "unknown format: %s\n", format.c_str());
  return 2;
}

// Splits "a,b,c" and parses every element with `parse`; returns false (after printing the
// offending token) on the first failure.
template <typename T, typename ParseFn>
bool ParseCsvList(const char* csv, ParseFn parse, std::vector<T>* out) {
  out->clear();
  const std::string s = csv;
  size_t pos = 0;
  while (pos <= s.size()) {
    size_t end = s.find(',', pos);
    if (end == std::string::npos) {
      end = s.size();
    }
    const std::string token = s.substr(pos, end - pos);
    T value;
    if (!parse(token, &value)) {
      std::fprintf(stderr, "cannot parse: %s\n", token.c_str());
      return false;
    }
    out->push_back(value);
    pos = end + 1;
  }
  return !out->empty();
}

bool ParseEncodingKind(const std::string& text, EncodingKind* out) {
  for (EncodingKind kind : kAllEncodingKinds) {
    if (text == EncodingKindName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

int CmdFaultCampaign(const Args& args) {
  FaultCampaignConfig cfg;
  cfg.seed = std::strtoull(args.Get("seed", "1"), nullptr, 10);
  cfg.trials_per_encoding =
      static_cast<int>(std::strtol(args.Get("trials", "256"), nullptr, 10));
  cfg.bits = static_cast<int>(std::strtol(args.Get("bits", "2"), nullptr, 10));
  if (args.Has("no-retry")) {  // raw outcome distribution: no ladder at all
    cfg.policy.snapshot_retry = false;
    cfg.policy.scrub_retry = false;
    cfg.policy.redeploy = false;
  }
  if (args.Has("no-snapshot-retry")) cfg.policy.snapshot_retry = false;
  if (args.Has("no-redeploy")) cfg.policy.redeploy = false;
  if (args.Has("no-watchdog")) cfg.policy.watchdog_headroom = 0.0;
  if (args.Has("dual-run")) cfg.policy.dual_run = true;
  if (args.Has("smoke")) {
    cfg.trials_per_encoding = 24;  // tier-1 CI mode: small but covers every cell
    cfg.policy.dual_run = true;    // exercise the full ladder including SDC detection
  }
  if (!ParseFaultModel(args.Get("fault", "bitflip"), &cfg.fault_model) ||
      !ParseFaultTrigger(args.Get("trigger", "pre"), &cfg.trigger)) {
    return Usage();
  }
  if (args.Has("regions") &&
      !ParseCsvList<CampaignRegion>(
          args.Get("regions"),
          [](const std::string& t, CampaignRegion* r) { return ParseCampaignRegion(t, r); },
          &cfg.regions)) {
    return Usage();
  }
  if (args.Has("encodings") &&
      !ParseCsvList<EncodingKind>(args.Get("encodings"), ParseEncodingKind,
                                  &cfg.encodings)) {
    return Usage();
  }

  const FaultCampaignResult result = RunFaultCampaign(cfg);
  std::printf("fault campaign: %d trials x %zu encodings, %s faults, trigger=%s\n",
              cfg.trials_per_encoding, cfg.encodings.size(),
              FaultModelName(cfg.fault_model), FaultTriggerName(cfg.trigger));
  for (const EncodingCampaignResult& enc : result.encodings) {
    const RegionStats& t = enc.totals;
    std::printf(
        "  %-8s correct=%llu sdc=%llu detected=%llu budget=%llu deadline=%llu "
        "dualrun=%llu recovered=%llu/%llu (snap=%llu scrub=%llu redeploy=%llu) "
        "sdc_rate=%.4f latency=%.0f\n",
        EncodingKindName(enc.encoding), static_cast<unsigned long long>(t.correct),
        static_cast<unsigned long long>(t.sdc), static_cast<unsigned long long>(t.detected),
        static_cast<unsigned long long>(t.budget_exceeded),
        static_cast<unsigned long long>(t.deadline_exceeded),
        static_cast<unsigned long long>(t.dual_run_caught),
        static_cast<unsigned long long>(t.recovered),
        static_cast<unsigned long long>(t.recovered + t.unrecovered),
        static_cast<unsigned long long>(t.recovered_snapshot),
        static_cast<unsigned long long>(t.recovered_scrub),
        static_cast<unsigned long long>(t.recovered_redeploy), t.SdcRate(),
        t.MeanDetectLatencyCycles());
  }
  const RegionStats& tot = result.totals;
  std::printf(
      "totals: %llu trials, %llu sdc (%.4f), %llu detected, %llu dual-run caught, "
      "%llu recovered, %llu permanent\n",
      static_cast<unsigned long long>(tot.trials),
      static_cast<unsigned long long>(tot.sdc), tot.SdcRate(),
      static_cast<unsigned long long>(tot.detected + tot.budget_exceeded +
                                      tot.deadline_exceeded),
      static_cast<unsigned long long>(tot.dual_run_caught),
      static_cast<unsigned long long>(tot.recovered),
      static_cast<unsigned long long>(tot.permanent_failure));
  if (args.Has("json")) {
    if (WriteStringToFile(args.Get("json"), FaultCampaignJson(result) + "\n")) {
      std::printf("wrote %s\n", args.Get("json"));
    } else {
      return 1;
    }
  }
  // With any ladder rung enabled, the deterministic simulator must recover every detected
  // fault — an unrecovered one means pristine-state restoration is broken.
  const bool ladder_enabled =
      cfg.policy.snapshot_retry || cfg.policy.scrub_retry || cfg.policy.redeploy;
  if (ladder_enabled && tot.unrecovered != 0) {
    std::fprintf(stderr, "FAIL: %llu detected faults did not recover via the ladder\n",
                 static_cast<unsigned long long>(tot.unrecovered));
    return 1;
  }
  return 0;
}

// Prints one campaign's outcome; returns the number of failures.
uint64_t ReportFuzzCampaign(const FuzzCampaignResult& result) {
  const FuzzConfig& cfg = result.config;
  std::printf("fuzz %s: seed=%llu cases=%d passed=%llu skipped=%llu failed=%llu\n",
              FuzzOracleName(cfg.oracle), static_cast<unsigned long long>(cfg.seed),
              cfg.cases, static_cast<unsigned long long>(result.passed),
              static_cast<unsigned long long>(result.skipped),
              static_cast<unsigned long long>(result.failed));
  for (const FuzzFailure& f : result.failures) {
    std::fprintf(stderr, "FAIL case %llu: %s\n",
                 static_cast<unsigned long long>(f.index), f.detail.c_str());
    std::fprintf(stderr, "  minimized (%d shrink steps): %s\n",
                 f.minimize_stats.reductions, f.minimized_detail.c_str());
    std::fprintf(stderr, "%s", f.minimized.ToText().c_str());
    std::fprintf(stderr, "  repro: %s\n", FuzzReproCommand(f).c_str());
  }
  return result.failed;
}

int CmdFuzz(const Args& args) {
  // Single-case replay from a corpus file: the one-command repro printed on failure.
  if (args.Has("replay")) {
    const StatusOr<FuzzCase> c = LoadFuzzCase(args.Get("replay"));
    if (!c.ok()) {
      std::fprintf(stderr, "cannot replay %s: %s\n", args.Get("replay"),
                   c.status().ToString().c_str());
      return 2;
    }
    const CaseResult r = RunFuzzCase(*c);
    std::printf("%s: %s%s%s\n", args.Get("replay"), FuzzVerdictName(r.verdict),
                r.detail.empty() ? "" : ": ", r.detail.c_str());
    return r.verdict == FuzzVerdict::kFail ? 1 : 0;
  }

  FuzzConfig cfg;
  cfg.seed = std::strtoull(args.Get("seed", "1"), nullptr, 10);
  cfg.cases = static_cast<int>(std::strtol(args.Get("cases", "256"), nullptr, 10));
  cfg.minimize = !args.Has("no-minimize");
  cfg.corpus_dir = args.Get("corpus-dir", "");
  if (!cfg.corpus_dir.empty()) {
    std::filesystem::create_directories(cfg.corpus_dir);
  }

  // Single-case mode: regenerate one campaign case from its SplitMix64 seed.
  if (args.Has("case-seed")) {
    if (!args.Has("oracle") || !ParseFuzzOracle(args.Get("oracle"), &cfg.oracle)) {
      return Usage();
    }
    const uint64_t case_seed = std::strtoull(args.Get("case-seed"), nullptr, 0);
    const FuzzCase c = GenerateFuzzCase(cfg.oracle, case_seed);
    const CaseResult r = RunFuzzCase(c);
    std::printf("%s", c.ToText().c_str());
    std::printf("verdict %s%s%s\n", FuzzVerdictName(r.verdict),
                r.detail.empty() ? "" : ": ", r.detail.c_str());
    if (r.verdict == FuzzVerdict::kFail && cfg.minimize) {
      const FuzzCase min = MinimizeFuzzCase(c, [](const FuzzCase& cand) {
        return RunFuzzCase(cand).verdict == FuzzVerdict::kFail;
      });
      std::printf("minimized:\n%s", min.ToText().c_str());
    }
    return r.verdict == FuzzVerdict::kFail ? 1 : 0;
  }

  if (args.Has("smoke")) {
    // Tier-1 CI mode: a small deterministic campaign per oracle, all must come back clean.
    uint64_t failed = 0;
    const std::pair<FuzzOracle, int> budgets[] = {{FuzzOracle::kKernel, 24},
                                                  {FuzzOracle::kIsa, 2048},
                                                  {FuzzOracle::kSerde, 48},
                                                  {FuzzOracle::kFrame, 512}};
    for (const auto& [oracle, cases] : budgets) {
      cfg.oracle = oracle;
      cfg.cases = cases;
      failed += ReportFuzzCampaign(RunFuzzCampaign(cfg));
    }
    return failed == 0 ? 0 : 1;
  }

  if (!args.Has("oracle") || !ParseFuzzOracle(args.Get("oracle"), &cfg.oracle)) {
    return Usage();
  }
  const FuzzCampaignResult result = RunFuzzCampaign(cfg);
  const uint64_t failed = ReportFuzzCampaign(result);
  if (args.Has("json")) {
    if (WriteStringToFile(args.Get("json"), FuzzCampaignJson(result) + "\n")) {
      std::printf("wrote %s\n", args.Get("json"));
    } else {
      return 1;
    }
  }
  return failed == 0 ? 0 : 1;
}

// Multi-tenant batched inference over TCP (see docs/SERVING.md). Blocks until killed.
int CmdServe(const Args& args) {
  if (!args.Has("models")) {
    return Usage();
  }
  ServeConfig cfg;
  cfg.max_batch = static_cast<size_t>(std::strtoul(args.Get("max-batch", "8"), nullptr, 10));
  cfg.cache_capacity = static_cast<size_t>(std::strtoul(args.Get("cache", "4"), nullptr, 10));
  cfg.max_queue_depth =
      static_cast<size_t>(std::strtoul(args.Get("queue", "1024"), nullptr, 10));
  const uint16_t port =
      static_cast<uint16_t>(std::strtoul(args.Get("port", "7433"), nullptr, 10));

  InferenceService service(cfg, DirectoryModelLoader(args.Get("models")));
  service.Start();
  FrameServer server(&service);
  std::printf("neuroc serve: models=%s port=%u max_batch=%zu cache=%zu queue=%zu\n",
              args.Get("models"), static_cast<unsigned>(port), cfg.max_batch,
              cfg.cache_capacity, cfg.max_queue_depth);
  const Status st = server.ListenAndServe(port);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}

// Aggregates metrics-registry run records (JSONL files appended via --metrics-out) into
// one summary: counters sum across runs, gauges keep their last-seen value, histograms
// merge count/sum/min/max. First-seen order is preserved so output is deterministic.
int CmdReport(const Args& args) {
  if (!args.Has("in")) {
    return Usage();
  }
  std::ifstream in(args.Get("in"), std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", args.Get("in"));
    return 1;
  }
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  std::vector<JsonValue> records;
  std::string error;
  if (!ParseJsonl(text, &records, &error)) {
    std::fprintf(stderr, "%s: %s\n", args.Get("in"), error.c_str());
    return 1;
  }

  // First-seen-order aggregation maps.
  std::vector<std::pair<std::string, double>> counters;  // name -> summed value
  std::vector<std::pair<std::string, double>> gauges;    // name -> last value
  struct HistAgg {
    std::string name;
    double count = 0, sum = 0, min = 0, max = 0;
    bool any = false;
  };
  std::vector<HistAgg> hists;
  const auto slot = [](std::vector<std::pair<std::string, double>>& v,
                       const std::string& name) -> double& {
    for (auto& [n, value] : v) {
      if (n == name) {
        return value;
      }
    }
    return v.emplace_back(name, 0.0).second;
  };

  for (const JsonValue& rec : records) {
    if (const JsonValue* cs = rec.Find("counters"); cs != nullptr && cs->is_object()) {
      for (const auto& [name, v] : cs->members) {
        slot(counters, name) += v.AsDouble();
      }
    }
    if (const JsonValue* gs = rec.Find("gauges"); gs != nullptr && gs->is_object()) {
      for (const auto& [name, v] : gs->members) {
        slot(gauges, name) = v.AsDouble();
      }
    }
    if (const JsonValue* hs = rec.Find("histograms"); hs != nullptr && hs->is_object()) {
      for (const auto& [name, v] : hs->members) {
        HistAgg* agg = nullptr;
        for (HistAgg& h : hists) {
          if (h.name == name) {
            agg = &h;
            break;
          }
        }
        if (agg == nullptr) {
          hists.emplace_back();
          hists.back().name = name;
          agg = &hists.back();
        }
        const JsonValue* count = v.Find("count");
        if (count == nullptr || count->AsDouble() == 0.0) {
          continue;
        }
        const double lo = v.Find("min") ? v.Find("min")->AsDouble() : 0.0;
        const double hi = v.Find("max") ? v.Find("max")->AsDouble() : 0.0;
        agg->count += count->AsDouble();
        agg->sum += v.Find("sum") ? v.Find("sum")->AsDouble() : 0.0;
        agg->min = agg->any ? std::min(agg->min, lo) : lo;
        agg->max = agg->any ? std::max(agg->max, hi) : hi;
        agg->any = true;
      }
    }
  }

  std::printf("%zu run record(s) from %s\n", records.size(), args.Get("in"));
  for (const JsonValue& rec : records) {
    const JsonValue* run = rec.Find("run");
    std::printf("  run: %s\n", run != nullptr && run->is_string() ? run->text.c_str()
                                                                  : "(unnamed)");
  }
  if (!counters.empty()) {
    std::printf("counters (summed across runs):\n");
    for (const auto& [name, value] : counters) {
      std::printf("  %-36s %.0f\n", name.c_str(), value);
    }
  }
  if (!gauges.empty()) {
    std::printf("gauges (last value):\n");
    for (const auto& [name, value] : gauges) {
      std::printf("  %-36s %g\n", name.c_str(), value);
    }
  }
  if (!hists.empty()) {
    std::printf("histograms (merged):\n");
    for (const HistAgg& h : hists) {
      std::printf("  %-36s count=%.0f mean=%g min=%g max=%g\n", h.name.c_str(), h.count,
                  h.count == 0 ? 0.0 : h.sum / h.count, h.min, h.max);
    }
  }

  if (args.Has("json")) {
    JsonWriter w;
    w.BeginObject();
    w.Key("schema").Value("neuroc.report.v1");
    w.Key("runs").Value(static_cast<uint64_t>(records.size()));
    w.Key("counters").BeginObject();
    for (const auto& [name, value] : counters) {
      w.Key(name).Value(value);
    }
    w.EndObject();
    w.Key("gauges").BeginObject();
    for (const auto& [name, value] : gauges) {
      w.Key(name).Value(value);
    }
    w.EndObject();
    w.Key("histograms").BeginObject();
    for (const HistAgg& h : hists) {
      w.Key(h.name).BeginObject();
      w.Key("count").Value(h.count);
      w.Key("sum").Value(h.sum);
      w.Key("min").Value(h.min);
      w.Key("max").Value(h.max);
      w.EndObject();
    }
    w.EndObject();
    w.EndObject();
    if (WriteStringToFile(args.Get("json"), w.str() + "\n")) {
      std::printf("wrote %s\n", args.Get("json"));
    } else {
      return 1;
    }
  }
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  Args args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      return Usage();
    }
    key = key.substr(2);
    if (const size_t eq = key.find('='); eq != std::string::npos) {
      args.options[key.substr(0, eq)] = key.substr(eq + 1);  // --key=value
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args.options[key] = argv[++i];
    } else {
      args.options[key] = "";  // boolean flag
    }
  }
  int rc = -1;
  if (args.command == "train") {
    rc = CmdTrain(args);
  } else if (args.command == "eval") {
    rc = CmdEval(args);
  } else if (args.command == "inspect") {
    rc = CmdInspect(args);
  } else if (args.command == "bench") {
    rc = CmdBench(args);
  } else if (args.command == "profile") {
    rc = CmdProfile(args);
  } else if (args.command == "deploy") {
    rc = CmdDeploy(args);
  } else if (args.command == "faultcampaign") {
    rc = CmdFaultCampaign(args);
  } else if (args.command == "fuzz") {
    rc = CmdFuzz(args);
  } else if (args.command == "serve") {
    rc = CmdServe(args);
  } else if (args.command == "report") {
    rc = CmdReport(args);
  } else {
    return Usage();
  }
  // Structured observability export: one registry run record per invocation, appended so
  // multi-command pipelines build a stream `neuroc report` can aggregate.
  if (args.Has("metrics-out") && *args.Get("metrics-out") != '\0') {
    if (MetricsRegistry::Global().AppendRunRecord(args.Get("metrics-out"), args.command)) {
      std::printf("appended metrics run record to %s\n", args.Get("metrics-out"));
    }
  }
  return rc;
}

}  // namespace
}  // namespace neuroc

int main(int argc, char** argv) { return neuroc::Main(argc, argv); }
