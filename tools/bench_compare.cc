// bench_compare — regression gate over the committed BENCH_*.json baselines.
//
//   bench_compare [--smoke] [--tol 0.5] <baseline.json> <fresh.json> [<b2> <f2> ...]
//
// Walks each baseline/fresh pair structurally and diffs every numeric leaf. Metrics are
// classified by key name:
//
//   deterministic  simulated cycles, instruction counts, program bytes, accuracies —
//                  anything the simulator's determinism contract covers. Any mismatch is
//                  a FAIL (exit 1), in both modes: these cannot legitimately drift
//                  without a code change that should also update the baseline.
//   host-varying   wall-clock throughput (sim_mips, *_ms, *_per_sec, speedups): compared
//                  against --tol relative tolerance (default 0.5). Beyond tolerance is a
//                  FAIL in full mode but only a WARN in --smoke mode — CI containers are
//                  1-core and noisy, so smoke mode gates determinism only.
//   ignored        environment/config stamps (host_threads_available, smoke, reps) that
//                  legitimately differ between a committed full run and a CI smoke run.
//
// A key present in the baseline but missing from the fresh output FAILs (schema
// regression); extra fresh keys are reported but harmless (new metrics land before the
// baseline is regenerated).

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/json_reader.h"

namespace neuroc {
namespace {

enum class MetricClass { kDeterministic, kHostVarying, kIgnored };

bool Contains(std::string_view hay, std::string_view needle) {
  return hay.find(needle) != std::string_view::npos;
}

// Classification is by the leaf's own key, so nested objects ("speedups": {...}) work
// through the per-leaf key, not the path.
MetricClass Classify(std::string_view key) {
  static constexpr std::string_view kIgnored[] = {
      "host_threads_available", "smoke",  "reps_per_timing",
      "reps",                   "trials", "epochs",
      "timing_reps"};
  for (const std::string_view k : kIgnored) {
    if (key == k) {
      return MetricClass::kIgnored;
    }
  }
  // Cycle-derived metrics are deterministic even when the key also matches a
  // host-varying pattern: "cycle_ratio_delta_vs_unrolled" is a ratio of simulated cycle
  // counts, which cannot drift without a code change.
  if (Contains(key, "cycle")) {
    return MetricClass::kDeterministic;
  }
  static constexpr std::string_view kHostPatterns[] = {
      "wall", "mips", "per_sec", "_ms",  "ms_",     "seconds",   "speedup",
      "_vs_", "ratio", "overhead", "host", "elapsed", "throughput"};
  for (const std::string_view p : kHostPatterns) {
    if (Contains(key, p)) {
      return MetricClass::kHostVarying;
    }
  }
  return MetricClass::kDeterministic;
}

struct CompareStats {
  int compared = 0;
  int warnings = 0;
  int failures = 0;
  bool smoke = false;
  double tol = 0.5;
};

double RelativeDelta(double baseline, double fresh) {
  if (baseline == fresh) {
    return 0.0;
  }
  const double denom = std::fabs(baseline) > 1e-12 ? std::fabs(baseline) : 1.0;
  return std::fabs(fresh - baseline) / denom;
}

// Array elements are labeled by an identifying member when one exists, so a diff in
// inference[5] reads as inference[mixed/block] in the report.
std::string ElementLabel(const JsonValue& element, size_t index) {
  std::string label;
  for (const char* key : {"encoding", "decode", "mode", "bench", "name", "kernel"}) {
    const JsonValue* v = element.Find(key);
    if (v != nullptr && v->is_string()) {
      label += label.empty() ? v->text : "/" + v->text;
    }
  }
  if (label.empty()) {
    label = std::to_string(index);
  }
  return label;
}

void Compare(const std::string& path, std::string_view key, const JsonValue& baseline,
             const JsonValue& fresh, CompareStats* stats) {
  if (baseline.is_object()) {
    if (!fresh.is_object()) {
      std::printf("FAIL %s: baseline is an object, fresh is not\n", path.c_str());
      ++stats->failures;
      return;
    }
    for (const auto& [name, value] : baseline.members) {
      const JsonValue* other = fresh.Find(name);
      const std::string child = path.empty() ? name : path + "." + name;
      if (other == nullptr) {
        if (Classify(name) != MetricClass::kIgnored) {
          std::printf("FAIL %s: missing from fresh output\n", child.c_str());
          ++stats->failures;
        }
        continue;
      }
      Compare(child, name, value, *other, stats);
    }
    for (const auto& [name, value] : fresh.members) {
      if (baseline.Find(name) == nullptr) {
        std::printf("NOTE %s.%s: new metric not in baseline\n", path.c_str(),
                    name.c_str());
      }
    }
    return;
  }
  if (baseline.is_array()) {
    if (!fresh.is_array() || fresh.elements.size() != baseline.elements.size()) {
      std::printf("FAIL %s: array shape differs (baseline %zu, fresh %zu)\n", path.c_str(),
                  baseline.elements.size(),
                  fresh.is_array() ? fresh.elements.size() : size_t{0});
      ++stats->failures;
      return;
    }
    for (size_t i = 0; i < baseline.elements.size(); ++i) {
      const std::string child =
          path + "[" + ElementLabel(baseline.elements[i], i) + "]";
      Compare(child, key, baseline.elements[i], fresh.elements[i], stats);
    }
    return;
  }
  if (!baseline.is_number()) {
    return;  // strings/bools are identity metadata, not gated metrics
  }
  const MetricClass cls = Classify(key);
  if (cls == MetricClass::kIgnored || !fresh.is_number()) {
    return;
  }
  ++stats->compared;
  const double delta = RelativeDelta(baseline.number, fresh.number);
  if (cls == MetricClass::kDeterministic) {
    if (baseline.number != fresh.number) {
      std::printf("FAIL %s: baseline=%g fresh=%g (determinism-sensitive)\n", path.c_str(),
                  baseline.number, fresh.number);
      ++stats->failures;
    }
    return;
  }
  if (delta > stats->tol) {
    const bool hard = !stats->smoke;
    std::printf("%s %s: baseline=%g fresh=%g (%+.1f%%, tol %.0f%%)\n",
                hard ? "FAIL" : "WARN", path.c_str(), baseline.number, fresh.number,
                100.0 * (fresh.number - baseline.number) /
                    (baseline.number != 0.0 ? baseline.number : 1.0),
                100.0 * stats->tol);
    ++(hard ? stats->failures : stats->warnings);
  }
}

int Usage() {
  std::fprintf(stderr,
               "usage: bench_compare [--smoke] [--tol R] <baseline.json> <fresh.json>"
               " [<baseline2> <fresh2> ...]\n");
  return 2;
}

int Main(int argc, char** argv) {
  CompareStats stats;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--smoke") {
      stats.smoke = true;
    } else if (arg == "--tol" && i + 1 < argc) {
      stats.tol = std::strtod(argv[++i], nullptr);
    } else if (arg.rfind("--tol=", 0) == 0) {
      stats.tol = std::strtod(argv[i] + 6, nullptr);
    } else if (arg.rfind("--", 0) == 0) {
      return Usage();
    } else {
      files.emplace_back(arg);
    }
  }
  if (files.empty() || files.size() % 2 != 0) {
    return Usage();
  }

  for (size_t p = 0; p < files.size(); p += 2) {
    JsonValue baseline, fresh;
    std::string error;
    if (!ParseJsonFile(files[p], &baseline, &error)) {
      std::fprintf(stderr, "bench_compare: %s\n", error.c_str());
      return 2;
    }
    if (!ParseJsonFile(files[p + 1], &fresh, &error)) {
      std::fprintf(stderr, "bench_compare: %s\n", error.c_str());
      return 2;
    }
    std::printf("comparing %s (baseline) vs %s (fresh)%s\n", files[p].c_str(),
                files[p + 1].c_str(), stats.smoke ? " [smoke]" : "");
    Compare("", "", baseline, fresh, &stats);
  }
  std::printf("bench_compare: %d metric(s) compared, %d warning(s), %d failure(s)\n",
              stats.compared, stats.warnings, stats.failures);
  return stats.failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace neuroc

int main(int argc, char** argv) { return neuroc::Main(argc, argv); }
