// Regenerates paper Fig. 7: the best *deployable* MLP vs the best Neuro-C model on all
// three datasets (MNIST-, FashionMNIST- and CIFAR5-like), comparing accuracy (7a),
// inference latency (7b) and program memory (7c).
//
// Paper reference: Neuro-C matches or exceeds the deployable-MLP accuracy everywhere while
// cutting latency from 100-140 ms to 30-50 ms and program memory from 80-90 KB to 20-35 KB.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

using namespace neuroc;
using namespace neuroc::benchutil;

namespace {

struct DatasetCase {
  const char* name;
  Dataset train;
  Dataset test;
  MlpSpec mlp;             // largest MLP that still fits the 128 KB budget
  NeuroCSpec nc;           // best Neuro-C configuration from manual search
};

}  // namespace

int main() {
  Rng split_rng(9);
  std::vector<DatasetCase> cases;
  {
    Dataset all = MakeMnistLike(4500, 71);
    auto [train, test] = all.Split(0.2, split_rng);
    DatasetCase c;
    c.name = "mnist-like";
    c.train = std::move(train);
    c.test = std::move(test);
    c.mlp = {{128}, 0.1f, false};
    c.nc.hidden = {256, 128};
    c.nc.layer.ternary.target_density = 0.12f;
    cases.push_back(std::move(c));
  }
  {
    Dataset all = MakeFashionLike(4500, 72);
    auto [train, test] = all.Split(0.2, split_rng);
    DatasetCase c;
    c.name = "fashion-like";
    c.train = std::move(train);
    c.test = std::move(test);
    c.mlp = {{128}, 0.1f, false};
    c.nc.hidden = {320, 128};
    c.nc.layer.ternary.target_density = 0.12f;
    cases.push_back(std::move(c));
  }
  {
    Dataset all = MakeCifar5Like(3600, 73);
    auto [train, test] = all.Split(0.2, split_rng);
    DatasetCase c;
    c.name = "cifar5-like";
    c.train = std::move(train);
    c.test = std::move(test);
    c.mlp = {{38}, 0.1f, false};  // 3072-input MLP: hidden 38 just fits 128 KB
    c.nc.hidden = {128, 64};
    c.nc.layer.ternary.target_density = 0.12f;
    cases.push_back(std::move(c));
  }

  TrainConfig cfg;
  cfg.epochs = 6;
  cfg.batch_size = 64;
  cfg.learning_rate = 1e-3f;
  TrainConfig nc_cfg = cfg;
  nc_cfg.learning_rate = 3e-3f;
  nc_cfg.lr_decay = 0.85f;
  nc_cfg.epochs = 8;  // quantization-aware training converges a little more slowly

  std::printf("Fig. 7: best deployable MLP vs best Neuro-C per dataset\n");
  uint64_t seed = 500;
  for (DatasetCase& c : cases) {
    PrintHeader(c.name);
    PrintModelResultHeader();
    ModelResult mlp = EvaluateMlp("mlp-best-fit", c.train, c.test, c.mlp, cfg, seed++);
    PrintModelResult(mlp);
    ModelResult nc = EvaluateNeuroC("neuroc-best", c.train, c.test, c.nc, nc_cfg, seed++);
    PrintModelResult(nc);
    if (mlp.deployable && nc.deployable) {
      std::printf("  accuracy delta %+0.4f | latency %.1f -> %.1f ms (%.0f%% lower) | "
                  "flash %.1f -> %.1f KB (%.0f%% lower)\n",
                  nc.quant_accuracy - mlp.quant_accuracy, mlp.latency_ms, nc.latency_ms,
                  100.0 * (mlp.latency_ms - nc.latency_ms) / mlp.latency_ms,
                  mlp.program_bytes / 1024.0, nc.program_bytes / 1024.0,
                  100.0 * (static_cast<double>(mlp.program_bytes) -
                           static_cast<double>(nc.program_bytes)) /
                      static_cast<double>(mlp.program_bytes));
    }
  }
  std::printf("\nShape checks vs paper: Neuro-C matches or beats the deployable MLP accuracy\n"
              "on every dataset while substantially reducing latency and program memory.\n");
  return 0;
}
