// Regenerates paper Fig. 8: Neuro-C vs the conventional-TNN ablation (per-neuron scale w_j
// removed, everything else identical) on all three datasets:
//   8a: classification accuracy (paper: −2.53 pp on MNIST, −3.55 pp on FashionMNIST,
//       no convergence on CIFAR5);
//   8b: inference-latency increase from keeping w_j (paper: < 1 ms on a 40–50 ms base);
//   8c: program-memory overhead of w_j (paper: 282–410 B on ≈20 KB images).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

using namespace neuroc;
using namespace neuroc::benchutil;

namespace {

struct Case {
  const char* name;
  Dataset train;
  Dataset test;
  NeuroCSpec spec;  // the best Neuro-C configuration; the ablation just disables w_j
};

}  // namespace

int main() {
  Rng split_rng(11);
  std::vector<Case> cases;
  {
    Dataset all = MakeMnistLike(4500, 81);
    auto [train, test] = all.Split(0.2, split_rng);
    Case c;
    c.name = "mnist-like";
    c.train = std::move(train);
    c.test = std::move(test);
    c.spec.hidden = {256, 128};
    c.spec.layer.ternary.target_density = 0.12f;
    cases.push_back(std::move(c));
  }
  {
    Dataset all = MakeFashionLike(4500, 82);
    auto [train, test] = all.Split(0.2, split_rng);
    Case c;
    c.name = "fashion-like";
    c.train = std::move(train);
    c.test = std::move(test);
    c.spec.hidden = {320, 128};
    c.spec.layer.ternary.target_density = 0.12f;
    cases.push_back(std::move(c));
  }
  {
    Dataset all = MakeCifar5Like(3600, 83);
    auto [train, test] = all.Split(0.2, split_rng);
    Case c;
    c.name = "cifar5-like";
    c.train = std::move(train);
    c.test = std::move(test);
    c.spec.hidden = {128, 64};
    c.spec.layer.ternary.target_density = 0.12f;
    cases.push_back(std::move(c));
  }

  TrainConfig cfg;
  cfg.epochs = 8;
  cfg.batch_size = 64;
  cfg.learning_rate = 2e-3f;
  cfg.lr_decay = 0.85f;

  std::printf("Fig. 8: Neuro-C vs conventional TNN (per-neuron scale removed)\n");
  std::printf("Both variants run on the same inference kernels; differences are purely\n"
              "architectural, as in the paper's protocol.\n\n");
  std::printf("%-13s %10s %10s %9s | %9s %9s %9s | %9s %9s %7s\n", "dataset", "nc_acc",
              "tnn_acc", "delta_pp", "nc_ms", "tnn_ms", "dlat_ms", "nc_KB", "tnn_KB",
              "dmem_B");
  uint64_t seed = 900;
  for (Case& c : cases) {
    // Accuracy comparison (8a): Neuro-C vs a TNN trained from scratch with w_j removed.
    ModelResult nc = EvaluateNeuroC("neuroc", c.train, c.test, c.spec, cfg, seed);
    NeuroCSpec tnn_spec = c.spec;
    tnn_spec.layer.use_per_neuron_scale = false;
    ModelResult tnn = EvaluateNeuroC("tnn", c.train, c.test, tnn_spec, cfg, seed);
    ++seed;

    // Latency/memory overhead (8b/8c): per the paper, benchmark THE SAME model with and
    // without the scaling factor, so the deltas isolate w_j's cost exactly.
    Rng rng(seed * 31);
    Network net = BuildNeuroC(c.train.input_dim(),
                              static_cast<size_t>(c.train.num_classes), c.spec, rng);
    Train(net, c.train, c.test, cfg);
    NeuroCModel scaled = NeuroCModel::FromTrained(net, c.train);
    NeuroCModel stripped = StripScales(scaled);
    DeployedModel d_scaled = DeployedModel::Deploy(scaled, Stm32f072rb().ToMachineConfig());
    DeployedModel d_stripped =
        DeployedModel::Deploy(stripped, Stm32f072rb().ToMachineConfig());
    const double ms_scaled = d_scaled.MeasureLatencyMs();
    const double ms_stripped = d_stripped.MeasureLatencyMs();

    std::printf("%-13s %10.4f %10.4f %9.2f | %9.2f %9.2f %9.2f | %9.1f %9.1f %7zd\n",
                c.name, nc.quant_accuracy, tnn.quant_accuracy,
                100.0f * (nc.quant_accuracy - tnn.quant_accuracy), ms_scaled, ms_stripped,
                ms_scaled - ms_stripped,
                d_scaled.report().program_bytes / 1024.0,
                d_stripped.report().program_bytes / 1024.0,
                static_cast<ptrdiff_t>(d_scaled.report().program_bytes) -
                    static_cast<ptrdiff_t>(d_stripped.report().program_bytes));
    if (!tnn.converged) {
      std::printf("%-13s   (TNN failed to converge: accuracy at or near chance)\n", "");
    }
  }
  std::printf(
      "\nShape checks vs paper: removing w_j costs accuracy (most severely on the hardest\n"
      "dataset), while keeping it costs well under 1 ms of latency and only a few hundred\n"
      "bytes of program memory.\n");
  return 0;
}
