// Regenerates paper Fig. 6 (all four panels) on the MNIST-like dataset:
//   6a: validation accuracy of MLP configurations vs model size, with the deployability
//       boundary at the 128 KB program-memory budget;
//   6b: inference latency of the deployable MLPs vs parameter count (linear trend);
//   6c: latency of Neuro-C vs the smallest MLP of comparable accuracy (small/medium/large);
//   6d: program memory of the same pairs.
//
// Paper reference: small Neuro-C ~97% in 5 ms / 3.1 KB vs MLP 43 ms / 30.9 KB (≈88-90%
// reduction); at the top of the range the MLP no longer fits flash while Neuro-C does.
// The paper's random search covers >50 MLP configurations; this harness sweeps a reduced
// grid (single-core budget) — the trend, not the point count, is the reproduction target.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

using namespace neuroc;
using namespace neuroc::benchutil;

int main() {
  Dataset all = MakeMnistLike(5000, 606060);
  Rng split_rng(1);
  auto [train, test] = all.Split(0.2, split_rng);
  std::printf("Fig. 6: MLP vs Neuro-C on the MNIST-like dataset (%zu train / %zu test)\n",
              train.num_examples(), test.num_examples());

  TrainConfig mlp_cfg;
  mlp_cfg.epochs = 6;
  mlp_cfg.batch_size = 64;
  mlp_cfg.learning_rate = 1e-3f;
  TrainConfig nc_cfg = mlp_cfg;
  nc_cfg.learning_rate = 2e-3f;

  // --- 6a / 6b: MLP sweep. ---
  PrintHeader("Fig. 6a/6b: MLP accuracy & latency vs size (deployability at 128 KB)");
  struct MlpConfig {
    const char* name;
    MlpSpec spec;
  };
  const MlpConfig mlp_grid[] = {
      {"mlp-h8", {{8}, 0.0f, false}},
      {"mlp-h16", {{16}, 0.0f, false}},
      {"mlp-h32", {{32}, 0.0f, false}},
      {"mlp-h64", {{64}, 0.1f, false}},
      {"mlp-h64-bn", {{64}, 0.0f, true}},
      {"mlp-h128", {{128}, 0.1f, false}},
      {"mlp-h96-48", {{96, 48}, 0.1f, false}},
      {"mlp-h192", {{192}, 0.1f, false}},   // exceeds flash: non-deployable
      {"mlp-h256", {{256}, 0.1f, false}},   // exceeds flash: non-deployable
  };
  std::vector<ModelResult> mlps;
  PrintModelResultHeader();
  uint64_t seed = 42;
  for (const MlpConfig& c : mlp_grid) {
    ModelResult r = EvaluateMlp(c.name, train, test, c.spec, mlp_cfg, seed++);
    PrintModelResult(r);
    mlps.push_back(r);
  }

  // --- Neuro-C scales. ---
  PrintHeader("Neuro-C configurations (small / medium / large)");
  struct NcConfig {
    const char* name;
    std::vector<size_t> hidden;
    float density;
  };
  const NcConfig nc_grid[] = {
      {"neuroc-small", {64}, 0.08f},
      {"neuroc-medium", {128}, 0.12f},
      {"neuroc-large", {256, 128}, 0.12f},
  };
  std::vector<ModelResult> ncs;
  PrintModelResultHeader();
  for (const NcConfig& c : nc_grid) {
    NeuroCSpec spec;
    spec.hidden = c.hidden;
    spec.layer.ternary.target_density = c.density;
    ModelResult r = EvaluateNeuroC(c.name, train, test, spec, nc_cfg, seed++);
    PrintModelResult(r);
    ncs.push_back(r);
  }

  // --- 6c / 6d: pair each Neuro-C scale with the smallest MLP of comparable accuracy. ---
  PrintHeader("Fig. 6c/6d: comparable-accuracy pairs (latency and program memory)");
  std::printf("%-14s %-12s %9s %9s | %-12s %9s %9s | %9s %9s\n", "pair", "neuroc",
              "acc", "lat_ms", "mlp", "acc", "lat_ms", "lat_red%", "mem_red%");
  for (const ModelResult& nc : ncs) {
    // The paper's rule: the smallest MLP configuration that reaches the Neuro-C accuracy.
    const ModelResult* best = nullptr;
    for (const ModelResult& m : mlps) {
      if (m.quant_accuracy >= nc.quant_accuracy) {
        if (best == nullptr || m.deployed_params < best->deployed_params) {
          best = &m;
        }
      }
    }
    if (best == nullptr) {
      // No MLP in the sweep reaches this accuracy — the paper's "MLP not even deployable"
      // regime. Report against the most accurate deployable one.
      for (const ModelResult& m : mlps) {
        if (m.deployable && (best == nullptr || m.quant_accuracy > best->quant_accuracy)) {
          best = &m;
        }
      }
      std::printf("%-14s (no MLP in sweep reaches %.4f; best deployable shown)\n",
                  nc.name.c_str(), nc.quant_accuracy);
    }
    const double lat_red =
        best->deployable
            ? 100.0 * (best->latency_ms - nc.latency_ms) / best->latency_ms
            : 0.0;
    const double mem_red = 100.0 *
                           (static_cast<double>(best->program_bytes) -
                            static_cast<double>(nc.program_bytes)) /
                           static_cast<double>(best->program_bytes);
    std::printf("%-14s %-12s %9.4f %9.2f | %-12s %9.4f ", nc.name.c_str(), "",
                nc.quant_accuracy, nc.latency_ms, best->name.c_str(), best->quant_accuracy);
    if (best->deployable) {
      std::printf("%9.2f | %8.1f%% %8.1f%%\n", best->latency_ms, lat_red, mem_red);
    } else {
      std::printf("%9s | %9s %8.1f%%\n", "N/A", "(MLP does", mem_red);
      std::printf("%-14s   (matched MLP exceeds the 128 KB budget: not deployable)\n", "");
    }
  }
  std::printf(
      "\nShape checks vs paper: MLP accuracy and latency grow with parameter count; the\n"
      "largest MLPs cross the deployability line; Neuro-C delivers comparable accuracy at\n"
      "roughly an order of magnitude less latency and program memory.\n");
  return 0;
}
