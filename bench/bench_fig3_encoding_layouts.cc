// Regenerates paper Fig. 3: the four encoding strategies applied to the same toy sparse
// matrix, showing pointer/index arrays, total parameters and compression ratios.

#include <cstdio>

#include "src/core/encoding.h"
#include "src/core/ternary_matrix.h"

using namespace neuroc;

int main() {
  // A small sparse ternary matrix in the spirit of the paper's yardstick example:
  // 12 inputs x 4 output neurons with mixed-polarity scattered connections.
  TernaryMatrix m(12, 4);
  m.set(0, 0, 1);
  m.set(3, 0, 1);
  m.set(9, 0, -1);
  m.set(1, 1, -1);
  m.set(2, 1, 1);
  m.set(7, 1, 1);
  m.set(11, 1, -1);
  m.set(4, 2, 1);
  m.set(5, 3, -1);
  m.set(6, 3, 1);
  m.set(10, 3, 1);

  std::printf("Fig. 3: encoding strategies applied to the same sparse matrix\n");
  std::printf("matrix: %zu x %zu, %zu nonzeros (density %.2f)\n\n", m.in_dim(), m.out_dim(),
              m.NonZeroCount(), m.Density());
  std::printf("dense ternary storage would need %zu bytes (1 per entry)\n\n",
              m.in_dim() * m.out_dim());

  const size_t dense_bytes = m.in_dim() * m.out_dim();
  for (EncodingKind kind : kAllEncodingKinds) {
    EncodingOptions opt;
    opt.block_size = 8;  // two blocks over 12 inputs, so the block structure is visible
    auto enc = BuildEncoding(kind, m, opt);
    const EncodingSizeBreakdown sizes = enc->Sizes();
    std::printf("%s", enc->Describe().c_str());
    std::printf("  metadata %zu B + indices %zu B = %zu B  (%.2fx vs dense)\n\n",
                sizes.metadata_bytes, sizes.index_bytes, sizes.total(),
                static_cast<double>(dense_bytes) / static_cast<double>(sizes.total()));
    // Round-trip sanity so the printed layouts are guaranteed faithful.
    if (!(enc->Decode() == m)) {
      std::printf("ERROR: %s decode mismatch\n", EncodingKindName(kind));
      return 1;
    }
  }
  return 0;
}
