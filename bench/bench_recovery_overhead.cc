// Guarded-execution overhead: what the fault-tolerance stack costs, per encoding.
//
// Deterministic (hard-gated) metrics: an armed watchdog must cost exactly zero simulated
// cycles on the fault-free path (the deadline is a supervisor-side compare, not guest
// work), and dual-run execution must cost exactly two single runs. Host-varying metrics:
// wall-clock of Snapshot(), full Restore(), the RAM+registers fast restore, and the
// guarded clean-path dispatch relative to a plain TryPredict. Emits
// BENCH_recovery_overhead.json for the bench_compare gate.
//
// `--smoke` shrinks repetitions so the tier-1 ctest sweep can run this binary.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/core/encoding.h"
#include "src/core/synthetic.h"
#include "src/obs/json_writer.h"
#include "src/runtime/deployed_model.h"
#include "src/runtime/recovery.h"
#include "src/sim/fault_injector.h"

namespace neuroc {
namespace {

constexpr int kRepeats = 5;  // best-of timing blocks, like bench_sim_throughput

double Seconds(std::chrono::steady_clock::time_point t0,
               std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

NeuroCModel MakeBenchModel(EncodingKind kind) {
  Rng rng(3 + static_cast<uint64_t>(kind));
  SyntheticNeuroCLayerSpec l0;
  l0.in_dim = 128;
  l0.out_dim = 32;
  l0.density = 0.15;
  l0.encoding = kind;
  SyntheticNeuroCLayerSpec l1 = l0;
  l1.in_dim = 32;
  l1.out_dim = 10;
  l1.relu = false;
  std::vector<QuantNeuroCLayer> layers;
  layers.push_back(MakeSyntheticNeuroCLayer(l0, rng));
  layers.push_back(MakeSyntheticNeuroCLayer(l1, rng));
  return NeuroCModel::FromLayers(std::move(layers));
}

struct EncodingRow {
  std::string encoding;
  // Deterministic: simulated cycles.
  uint64_t cycles_plain = 0;     // unsupervised TryPredict
  uint64_t cycles_watchdog = 0;  // ArmWatchdog'ed TryPredict — must equal cycles_plain
  uint64_t cycles_dual_run = 0;  // both redundant runs — must equal 2 * cycles_plain
  uint64_t snapshot_flash_bytes = 0;
  uint64_t snapshot_ram_bytes = 0;
  // Host-varying: wall costs.
  double snapshot_wall_ms = 0.0;
  double restore_full_wall_ms = 0.0;
  double restore_ram_wall_ms = 0.0;
  double guarded_clean_overhead_ratio = 0.0;  // GuardedModel::Predict / plain TryPredict
  double ladder_scrub_recovery_wall_ms = 0.0;  // detect + 2 rungs on a flash fault
};

// Best-of-kRepeats wall seconds for `fn` called `iters` times back to back.
template <typename Fn>
double BestWall(int iters, Fn&& fn) {
  double best = 0.0;
  for (int rep = 0; rep < kRepeats; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      fn();
    }
    const double s = Seconds(t0, std::chrono::steady_clock::now());
    if (best == 0.0 || s < best) {
      best = s;
    }
  }
  return best / iters;
}

EncodingRow MeasureEncoding(EncodingKind kind, int iters) {
  EncodingRow row;
  row.encoding = EncodingKindName(kind);
  Rng rng(17);

  // Simulated-cycle identities (deterministic, so one run each is exact).
  DeployedModel plain = DeployedModel::Deploy(MakeBenchModel(kind));
  const std::vector<int8_t> input = MakeRandomInput(plain.input_dim(), rng);
  NEUROC_CHECK(plain.TryPredict(input).ok());
  row.cycles_plain = plain.report().cycles_per_inference;

  DeployedModel armed = DeployedModel::Deploy(MakeBenchModel(kind));
  NEUROC_CHECK(armed.ArmWatchdog(8.0).ok());
  NEUROC_CHECK(armed.TryPredict(input).ok());
  row.cycles_watchdog = armed.report().cycles_per_inference;
  NEUROC_CHECK(row.cycles_watchdog == row.cycles_plain);  // zero supervisor cycles

  // Dual run: run, fast-restore RAM+registers, run again; both runs from cycle zero.
  armed.Scrub();
  NEUROC_CHECK(armed.TryPredict(input).ok());
  const uint64_t run1 = armed.machine().cpu().cycles();
  armed.machine().Restore(armed.pristine_snapshot(), RestoreScope::kRamAndRegisters);
  NEUROC_CHECK(armed.TryPredict(input).ok());
  row.cycles_dual_run = run1 + armed.machine().cpu().cycles();
  NEUROC_CHECK(row.cycles_dual_run == 2 * row.cycles_plain);

  const MachineSnapshot snap = plain.machine().Snapshot();
  row.snapshot_flash_bytes = snap.memory.flash.size();
  row.snapshot_ram_bytes = snap.memory.ram.size();

  // Wall costs of the state machinery itself.
  row.snapshot_wall_ms =
      1e3 * BestWall(iters, [&] { (void)plain.machine().Snapshot(); });
  row.restore_full_wall_ms =
      1e3 * BestWall(iters, [&] { plain.machine().Restore(snap); });
  row.restore_ram_wall_ms = 1e3 * BestWall(iters, [&] {
    plain.machine().Restore(snap, RestoreScope::kRamAndRegisters);
  });

  // Guarded clean-path dispatch vs a bare TryPredict (same machine work, so the ratio is
  // the GuardedModel bookkeeping).
  StatusOr<GuardedModel> guarded = GuardedModel::Create(MakeBenchModel(kind));
  NEUROC_CHECK(guarded.ok());
  GuardedModel& gm = *guarded;
  const double plain_ms =
      1e3 * BestWall(iters, [&] { (void)plain.TryPredict(input); });
  const double guarded_ms = 1e3 * BestWall(iters, [&] { (void)gm.Predict(input); });
  row.guarded_clean_overhead_ratio = plain_ms > 0.0 ? guarded_ms / plain_ms : 0.0;

  // Full-ladder recovery wall cost for a kernel-code flash fault: detection plus the
  // snapshot rung (fails — flash still bad) plus the scrub rung (succeeds).
  row.ladder_scrub_recovery_wall_ms = 1e3 * BestWall(std::max(1, iters / 8), [&] {
    Rng fault_rng(5);
    InjectFault(gm.deployed().machine().memory(),
                gm.deployed().kernel_program().base_addr,
                static_cast<uint32_t>(gm.deployed().kernel_program().bytes.size()),
                FaultModel::kSingleBitFlip, 1, fault_rng);
    const GuardedResult gr = gm.Predict(input);
    NEUROC_CHECK(gr.ok);
  });
  return row;
}

}  // namespace
}  // namespace neuroc

int main(int argc, char** argv) {
  using namespace neuroc;
  bool smoke = false;
  std::string out_path = "BENCH_recovery_overhead.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }
  const int iters = smoke ? 20 : 200;

  std::printf("recovery overhead, 128-32-10 @ density 0.15, %d iters per timing rep\n",
              iters);
  std::printf("%-8s %12s %12s %12s %10s %10s %10s %8s\n", "encoding", "cyc/inf",
              "cyc(wdog)", "cyc(dual)", "snap_ms", "restore_ms", "ram_ms", "guard_x");
  std::vector<EncodingRow> rows;
  for (EncodingKind kind : kAllEncodingKinds) {
    EncodingRow row = MeasureEncoding(kind, iters);
    std::printf("%-8s %12llu %12llu %12llu %10.4f %10.4f %10.4f %8.3f\n",
                row.encoding.c_str(), static_cast<unsigned long long>(row.cycles_plain),
                static_cast<unsigned long long>(row.cycles_watchdog),
                static_cast<unsigned long long>(row.cycles_dual_run),
                row.snapshot_wall_ms, row.restore_full_wall_ms, row.restore_ram_wall_ms,
                row.guarded_clean_overhead_ratio);
    rows.push_back(std::move(row));
  }

  JsonWriter w;
  w.BeginObject();
  w.Key("bench").Value("recovery_overhead");
  w.Key("model").Value("128-32-10 density 0.15");
  w.Key("smoke").Value(smoke ? 1 : 0);
  w.Key("timing_reps").Value(static_cast<uint64_t>(iters));
  w.Key("encodings").BeginArray();
  for (const EncodingRow& r : rows) {
    w.BeginObject();
    w.Key("encoding").Value(r.encoding);
    w.Key("cycles_per_inference").Value(r.cycles_plain);
    w.Key("cycles_per_inference_watchdog").Value(r.cycles_watchdog);
    w.Key("watchdog_extra_cycles").Value(r.cycles_watchdog - r.cycles_plain);
    w.Key("cycles_dual_run").Value(r.cycles_dual_run);
    w.Key("snapshot_flash_bytes").Value(r.snapshot_flash_bytes);
    w.Key("snapshot_ram_bytes").Value(r.snapshot_ram_bytes);
    w.Key("snapshot_wall_ms").ValueFixed(r.snapshot_wall_ms, 6);
    w.Key("restore_full_wall_ms").ValueFixed(r.restore_full_wall_ms, 6);
    w.Key("restore_ram_wall_ms").ValueFixed(r.restore_ram_wall_ms, 6);
    w.Key("guarded_clean_overhead_ratio").ValueFixed(r.guarded_clean_overhead_ratio, 3);
    w.Key("ladder_scrub_recovery_wall_ms").ValueFixed(r.ladder_scrub_recovery_wall_ms, 6);
    w.EndObject();
  }
  w.EndArray();
  w.Key("notes").BeginArray();
  w.Value(
      "watchdog_extra_cycles is asserted zero in-binary: the deadline is one supervisor "
      "compare per block/step, never guest work");
  w.Value(
      "cycles_dual_run is asserted exactly 2x cycles_per_inference: the redundant run "
      "replays from the pristine RAM+register snapshot");
  w.Value("restore_ram skips the flash rewrite and decode/block-cache invalidation");
  w.EndArray();
  w.EndObject();
  benchutil::WriteBenchJson(out_path, w);
  return 0;
}
