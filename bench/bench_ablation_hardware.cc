// Hardware-coupling ablation (paper Sec. 6: "On devices with different architectural
// features ... the same design philosophy would lead to different architectural choices").
//
// Sweeps two cycle-model parameters of the simulated core and reports how MLP and Neuro-C
// latencies respond:
//   (a) multiplier cost: 1 cycle (STM32F0 fast multiplier) vs 32 cycles (the iterative
//       Cortex-M0 multiplier option). The MLP multiplies on every connection, Neuro-C once
//       per neuron — so the slow multiplier is where the MAC-free design pays off hardest.
//   (b) flash wait states 0/1/2 (higher clocks or slower flash): both models stream
//       constants from flash, so both scale up, Neuro-C from a much smaller base.

#include <cstdio>

#include "src/core/synthetic.h"
#include "src/runtime/deployed_model.h"

using namespace neuroc;

namespace {

NeuroCModel MakeNc(Rng& rng) {
  SyntheticNeuroCLayerSpec l0;
  l0.in_dim = 784;
  l0.out_dim = 128;
  l0.density = 0.12;
  SyntheticNeuroCLayerSpec l1 = l0;
  l1.in_dim = 128;
  l1.out_dim = 10;
  l1.relu = false;
  std::vector<QuantNeuroCLayer> layers;
  layers.push_back(MakeSyntheticNeuroCLayer(l0, rng));
  layers.push_back(MakeSyntheticNeuroCLayer(l1, rng));
  return NeuroCModel::FromLayers(std::move(layers));
}

MlpModel MakeMlp(Rng& rng) {
  std::vector<QuantDenseLayer> layers;
  layers.push_back(MakeSyntheticDenseLayer(784, 128, true, 11, rng));
  layers.push_back(MakeSyntheticDenseLayer(128, 10, false, 11, rng));
  return MlpModel::FromLayers(std::move(layers));
}

double MeasureNc(const NeuroCModel& m, const MachineConfig& cfg) {
  DeployedModel d = DeployedModel::Deploy(m, cfg);
  return d.MeasureLatencyMs();
}

double MeasureMlp(const MlpModel& m, const MachineConfig& cfg) {
  DeployedModel d = DeployedModel::Deploy(m, cfg);
  return d.MeasureLatencyMs();
}

}  // namespace

int main() {
  Rng rng(2718);
  NeuroCModel nc = MakeNc(rng);
  MlpModel mlp = MakeMlp(rng);
  std::printf("Hardware-coupling ablation: 784->128->10 models (same dims), 8 MHz core\n\n");

  std::printf("--- (a) multiplier cost ---\n");
  std::printf("%-22s %10s %10s %12s\n", "multiplier", "mlp_ms", "neuroc_ms", "mlp/neuroc");
  for (int mul : {1, 32}) {
    MachineConfig cfg;
    cfg.cycle_model.mul = mul;
    const double m = MeasureMlp(mlp, cfg);
    const double n = MeasureNc(nc, cfg);
    std::printf("%-22s %10.2f %10.2f %11.1fx\n",
                mul == 1 ? "1-cycle (STM32F0)" : "32-cycle (iterative)", m, n, m / n);
  }

  std::printf("\n--- (b) flash wait states ---\n");
  std::printf("%-22s %10s %10s %12s\n", "wait states", "mlp_ms", "neuroc_ms", "mlp/neuroc");
  for (int ws : {0, 1, 2}) {
    MachineConfig cfg;
    cfg.cycle_model.flash_wait_states = ws;
    const double m = MeasureMlp(mlp, cfg);
    const double n = MeasureNc(nc, cfg);
    std::printf("%-22d %10.2f %10.2f %11.1fx\n", ws, m, n, m / n);
  }

  std::printf("\nShape checks: the Neuro-C advantage widens dramatically under the iterative\n"
              "multiplier (MACs dominate the MLP) and persists across flash wait states.\n");
  return 0;
}
