// Host-side micro-benchmarks (google-benchmark) for the methodology-level components:
// encoding traversal throughput, dense matmul, the full simulator's instruction rate and
// the assembler. These are not paper figures; they document the cost of the harness itself
// and catch performance regressions in the hot paths the experiment benches rely on.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "src/core/synthetic.h"
#include "src/isa/assembler.h"
#include "src/kernels/kernel_sources.h"
#include "src/runtime/deployed_model.h"
#include "src/tensor/matrix_ops.h"

namespace neuroc {
namespace {

void BM_EncodingAccumulate(benchmark::State& state) {
  const EncodingKind kind = static_cast<EncodingKind>(state.range(0));
  const size_t in_dim = static_cast<size_t>(state.range(1));
  Rng rng(7);
  const TernaryMatrix m = TernaryMatrix::Random(in_dim, 64, 0.12, rng);
  const auto enc = BuildEncoding(kind, m);
  const std::vector<int8_t> input = MakeRandomInput(in_dim, rng);
  std::vector<int32_t> sums(64);
  for (auto _ : state) {
    enc->Accumulate(input, sums);
    benchmark::DoNotOptimize(sums.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(m.NonZeroCount()));
}
BENCHMARK(BM_EncodingAccumulate)
    ->ArgsProduct({{0, 1, 2, 3}, {256, 784}})
    ->ArgNames({"kind", "in"});

void BM_MatMul(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(3);
  Tensor a({n, n});
  Tensor b({n, n});
  for (float& v : a.flat()) {
    v = rng.NextUniform(-1, 1);
  }
  for (float& v : b.flat()) {
    v = rng.NextUniform(-1, 1);
  }
  Tensor out;
  for (auto _ : state) {
    MatMul(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * n * n));
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128);

void BM_SimulatorInstructionRate(benchmark::State& state) {
  // A tight arithmetic loop: measures simulated instructions per host second.
  Machine machine;
  const AssembledProgram p = Assemble(R"(
    movs r1, #0
    ldr r2, =200000
loop:
    adds r1, r1, #1
    cmp r1, r2
    blt loop
    movs r0, r1
    bx lr
  )", 0x08000000);
  machine.LoadBytes(0x08000000, p.bytes);
  uint64_t instructions = 0;
  for (auto _ : state) {
    machine.CallFunction(0x08000000, {});
    benchmark::DoNotOptimize(machine.ReturnValue());
  }
  instructions = machine.cpu().instructions();
  state.SetItemsProcessed(static_cast<int64_t>(instructions));
}
BENCHMARK(BM_SimulatorInstructionRate);

void BM_DeployedNeuroCInference(benchmark::State& state) {
  // Wall-clock cost of one simulated Neuro-C inference (the unit of all figure benches).
  Rng rng(5);
  SyntheticNeuroCLayerSpec spec;
  spec.in_dim = 784;
  spec.out_dim = 128;
  spec.density = 0.12;
  std::vector<QuantNeuroCLayer> layers;
  layers.push_back(MakeSyntheticNeuroCLayer(spec, rng));
  NeuroCModel model = NeuroCModel::FromLayers(std::move(layers));
  DeployedModel deployed = DeployedModel::Deploy(model);
  const std::vector<int8_t> input = MakeRandomInput(784, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(deployed.Predict(input));
  }
}
BENCHMARK(BM_DeployedNeuroCInference);

void BM_AssembleKernels(benchmark::State& state) {
  KernelVariant v;
  v.kind = EncodingKind::kDelta;
  const std::string src = GenerateKernelSource(v);
  for (auto _ : state) {
    AssembledProgram p = Assemble(src, 0x08000000);
    benchmark::DoNotOptimize(p.bytes.data());
  }
}
BENCHMARK(BM_AssembleKernels);

// Assembler scaling on codegen-sized inputs: an unrolled kernel for an in x out layer at
// 5% density is tens of thousands of straight-line instructions, the regime the
// string_view scanner and hash-map symbol lookup were added for. Throughput is reported
// in source lines/second.
void BM_AssembleUnrolledCodegen(benchmark::State& state) {
  const size_t in_dim = static_cast<size_t>(state.range(0));
  Rng rng(11);
  const TernaryMatrix m = TernaryMatrix::Random(in_dim, 64, 0.05, rng);
  const UnrolledEncoding enc(m);
  KernelVariant v;
  v.kind = EncodingKind::kUnrolled;
  v.unrolled_layer = 0;
  const std::string src = GenerateUnrolledKernelSource(v, enc);
  const int64_t lines = std::count(src.begin(), src.end(), '\n');
  for (auto _ : state) {
    AssembledProgram p = Assemble(src, 0x08000000);
    benchmark::DoNotOptimize(p.bytes.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * lines);
  state.counters["source_lines"] = static_cast<double>(lines);
}
BENCHMARK(BM_AssembleUnrolledCodegen)->Arg(1024)->Arg(4096)->Arg(16384);

}  // namespace
}  // namespace neuroc

BENCHMARK_MAIN();
