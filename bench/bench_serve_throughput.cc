// Serving-layer throughput and latency: what `neuroc serve` delivers under closed-loop
// (fixed concurrency) and open-loop (fixed offered rate) load, and what it costs per
// request in simulated cycles and energy.
//
// Deterministic (hard-gated) metrics: the order-independent response checksum over the
// fixed 32-request prefix, per-request simulated cycles and per-request energy. All are
// pure functions of (seed, model set) — independent of client count, worker threads,
// offered rate and batching interleavings — and this binary asserts exactly that: the
// 1-client/1-thread and 4-client/4-thread closed-loop points must produce identical
// checksums, cycles and energy, and every open-loop point must match them too.
// Host-varying metrics: p50/p99/mean latency, wall time, achieved throughput — compared
// loosely (warn-only under the CI smoke gate; this container is 1-core and noisy).
//
// `--smoke` shrinks the request count per point; the deterministic keys are normalized
// per-request (and the checksum prefix is fixed), so they are byte-identical between a
// smoke run and the committed full run — only the structure and the deterministic values
// are gated across modes.

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/core/synthetic.h"
#include "src/obs/json_writer.h"
#include "src/serve/load_gen.h"
#include "src/serve/service.h"

namespace neuroc {
namespace {

constexpr size_t kInputDim = 16;
constexpr size_t kChecksumPrefix = 32;

// Two models with different shapes so per-request cycles genuinely average across the
// round-robin model assignment (catching any batching path that drops or double-runs a
// model's share).
NeuroCModel MakeServeModel(uint64_t seed, size_t hidden, double density) {
  Rng rng(seed);
  SyntheticNeuroCLayerSpec l0;
  l0.in_dim = kInputDim;
  l0.out_dim = hidden;
  l0.density = density;
  SyntheticNeuroCLayerSpec l1 = l0;
  l1.in_dim = hidden;
  l1.out_dim = 10;
  l1.relu = false;
  std::vector<QuantNeuroCLayer> layers;
  layers.push_back(MakeSyntheticNeuroCLayer(l0, rng));
  layers.push_back(MakeSyntheticNeuroCLayer(l1, rng));
  return NeuroCModel::FromLayers(std::move(layers));
}

ModelLoader BenchLoader() {
  return [](const std::string& name) -> StatusOr<NeuroCModel> {
    if (name == "m0") {
      return MakeServeModel(401, /*hidden=*/12, /*density=*/0.3);
    }
    if (name == "m1") {
      return MakeServeModel(402, /*hidden=*/20, /*density=*/0.2);
    }
    return Status(ErrorCode::kIoError, "no such model: " + name);
  };
}

struct Point {
  std::string name;
  size_t clients = 0;       // closed loop only
  double offered_qps = 0.0; // open loop only
  size_t host_threads = 0;  // worker pool size for this point
  LoadGenReport report;
};

LoadGenConfig BaseConfig(size_t total_requests) {
  LoadGenConfig cfg;
  cfg.models = {"m0", "m1"};
  cfg.tenants = {"alpha", "beta", "gamma"};
  cfg.input_dim = kInputDim;
  cfg.seed = 11;
  cfg.total_requests = total_requests;
  cfg.checksum_prefix = kChecksumPrefix;
  return cfg;
}

// Fresh service per point: queue depth, cache state and dispatcher cadence start
// identically for every sweep point.
LoadGenReport RunPoint(const LoadGenConfig& cfg, size_t host_threads, bool open_loop) {
  ThreadPool::SetGlobalThreads(host_threads);
  ServeConfig serve_cfg;
  serve_cfg.max_batch = 8;
  serve_cfg.cache_capacity = 4;
  InferenceService service(serve_cfg, BenchLoader());
  service.Start();
  const LoadGenReport report =
      open_loop ? RunOpenLoop(service, cfg) : RunClosedLoop(service, cfg);
  service.Stop();
  return report;
}

double PerRequest(uint64_t total, size_t completed) {
  return completed > 0 ? static_cast<double>(total) / static_cast<double>(completed)
                       : 0.0;
}

void WritePointMetrics(JsonWriter& w, const Point& p) {
  w.Key("name").Value(p.name);
  w.Key("response_checksum").Value(p.report.checksum);
  w.Key("cycles_per_request").ValueFixed(PerRequest(p.report.total_cycles,
                                                    p.report.completed - p.report.failed),
                                         3);
  w.Key("energy_pj_per_request")
      .ValueFixed(PerRequest(p.report.total_energy_pj,
                             p.report.completed - p.report.failed),
                  3);
  w.Key("failed").Value(static_cast<uint64_t>(p.report.failed));
  w.Key("p50_ms").ValueFixed(p.report.p50_ms, 4);
  w.Key("p99_ms").ValueFixed(p.report.p99_ms, 4);
  w.Key("mean_ms").ValueFixed(p.report.mean_ms, 4);
  w.Key("wall_ms").ValueFixed(p.report.wall_ms, 3);
  w.Key("achieved_per_sec").ValueFixed(p.report.achieved_per_sec, 1);
}

}  // namespace
}  // namespace neuroc

int main(int argc, char** argv) {
  using namespace neuroc;
  bool smoke = false;
  std::string out_path = "BENCH_serve_throughput.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }
  // Even multiple of the model count, >= the checksum prefix, so the per-request
  // deterministic keys and the checksum are identical across smoke and full runs.
  const size_t total_requests = smoke ? 64 : 512;

  std::printf("serve throughput, 2 models (16-12-10 d0.3 / 16-20-10 d0.2), %zu req/point\n",
              total_requests);
  std::printf("%-14s %10s %10s %10s %12s %14s\n", "point", "p50_ms", "p99_ms", "wall_ms",
              "ach/sec", "cyc/req");

  std::vector<Point> closed;
  for (const auto& [clients, threads] :
       std::vector<std::pair<size_t, size_t>>{{1, 1}, {4, 4}}) {
    Point p;
    p.name = "closed_c" + std::to_string(clients);
    p.clients = clients;
    p.host_threads = threads;
    LoadGenConfig cfg = BaseConfig(total_requests);
    cfg.clients = clients;
    p.report = RunPoint(cfg, threads, /*open_loop=*/false);
    closed.push_back(std::move(p));
  }
  std::vector<Point> open;
  for (const double qps : {200.0, 1000.0, 4000.0}) {
    Point p;
    p.name = "open_qps" + std::to_string(static_cast<int>(qps));
    p.offered_qps = qps;
    p.host_threads = 4;
    LoadGenConfig cfg = BaseConfig(total_requests);
    cfg.offered_qps = qps;
    p.report = RunPoint(cfg, /*host_threads=*/4, /*open_loop=*/true);
    open.push_back(std::move(p));
  }
  ThreadPool::SetGlobalThreads(0);

  // The determinism contract, asserted in-binary: payloads (and therefore checksum,
  // cycles and energy) are pure functions of (request, model) — client count, worker
  // threads and offered rate must not leak into them.
  for (const auto* points : {&closed, &open}) {
    for (const Point& p : *points) {
      NEUROC_CHECK(p.report.failed == 0);
      NEUROC_CHECK(p.report.completed == total_requests);
      NEUROC_CHECK(p.report.checksum == closed[0].report.checksum);
      NEUROC_CHECK(p.report.total_cycles == closed[0].report.total_cycles);
      NEUROC_CHECK(p.report.total_energy_pj == closed[0].report.total_energy_pj);
      std::printf("%-14s %10.4f %10.4f %10.3f %12.1f %14.3f\n", p.name.c_str(),
                  p.report.p50_ms, p.report.p99_ms, p.report.wall_ms,
                  p.report.achieved_per_sec,
                  PerRequest(p.report.total_cycles, p.report.completed));
    }
  }

  JsonWriter w;
  w.BeginObject();
  w.Key("bench").Value("serve_throughput");
  w.Key("model_set").Value("m0: 16-12-10 density 0.3, m1: 16-20-10 density 0.2");
  w.Key("smoke").Value(smoke ? 1 : 0);
  w.Key("reps").Value(static_cast<uint64_t>(total_requests));  // requests per point
  w.Key("checksum_prefix").Value(static_cast<uint64_t>(kChecksumPrefix));
  w.Key("closed_loop").BeginArray();
  for (const Point& p : closed) {
    w.BeginObject();
    w.Key("clients").Value(static_cast<uint64_t>(p.clients));
    w.Key("host_threads").Value(static_cast<uint64_t>(p.host_threads));
    WritePointMetrics(w, p);
    w.EndObject();
  }
  w.EndArray();
  w.Key("open_loop").BeginArray();
  for (const Point& p : open) {
    w.BeginObject();
    w.Key("offered_per_sec").ValueFixed(p.offered_qps, 1);
    w.Key("host_threads").Value(static_cast<uint64_t>(p.host_threads));
    WritePointMetrics(w, p);
    w.EndObject();
  }
  w.EndArray();
  w.Key("notes").BeginArray();
  w.Value(
      "response_checksum, cycles_per_request and energy_pj_per_request are asserted "
      "in-binary to be identical across every point: payloads are pure functions of "
      "(request, model), never of client count, worker threads or offered rate");
  w.Value(
      "latency and achieved throughput are host-varying; CI containers are 1-core, so "
      "open-loop points past saturation mostly measure queueing delay there");
  w.Value(
      "checksum folds the encoded response payloads of request ids < checksum_prefix "
      "with an order-independent XOR, so any completion order matches");
  w.EndArray();
  w.EndObject();
  benchutil::WriteBenchJson(out_path, w);
  return 0;
}
