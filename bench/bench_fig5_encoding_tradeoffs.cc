// Regenerates paper Fig. 5: latency (5a) and flash usage (5b) of the sparse encodings on
// the simulated Cortex-M0, sweeping the output size N_out in powers of two from 32 to 256
// for a single feedforward layer with fixed input dimension and sparsity (Sec. 4.3), plus
// the fifth (unrolled per-model codegen) encoding added on top of the paper's four.
//
// Paper reference points at N_out = 256 (in their fixed configuration):
//   latency: delta 26 ms < mixed 28 ms < block 30 ms < CSC 32 ms
//   flash:   block 11.6 KB (smallest, 8-bit by construction) ... CSC 20.1 KB (largest)
//
// We report two sparsity regimes, because which format is smallest depends on whether the
// delta/mixed streams still fit 8 bits: a moderate-density regime (deltas fit one byte →
// delta is both fastest and compact) and a high-sparsity regime (gaps overflow one byte →
// only the block format keeps 8-bit arrays, and is clearly smallest, as in Fig. 5b).
//
// The unrolled encoding inverts the trade: weights become straight-line Thumb with no
// runtime index decoding, so it is the fastest format at every point, but its flash cost
// per nonzero is the largest — the headline section pins the cycles-vs-delta ratio at
// density 0.05 and the sweep documents where unrolled stops fitting the 128 KB budget.
//
// Emits BENCH_fig5_encoding_tradeoffs.json. Every metric here is simulator-deterministic
// (cycles, flash bytes, energy proxy), so `--smoke` only exists for CLI symmetry with the
// other gated benches; the output is identical with or without it.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/synthetic.h"
#include "src/obs/json_writer.h"
#include "src/runtime/deployed_model.h"
#include "src/runtime/platform.h"
#include "src/runtime/profile.h"

using namespace neuroc;

namespace {

struct CellResult {
  EncodingKind kind = EncodingKind::kCsc;
  uint64_t cycles = 0;
  double latency_ms = 0.0;
  size_t flash_bytes = 0;
  bool deployable = false;  // fits the paper board's 128 KB budget
  EnergyEstimate energy;
};

NeuroCModel MakeLayerModel(size_t in_dim, size_t n_out, double density, EncodingKind kind,
                           uint64_t seed) {
  Rng rng(seed);  // same adjacency sample per row across encodings
  SyntheticNeuroCLayerSpec spec;
  spec.in_dim = in_dim;
  spec.out_dim = n_out;
  spec.density = density;
  spec.encoding = kind;
  std::vector<QuantNeuroCLayer> layers;
  layers.push_back(MakeSyntheticNeuroCLayer(spec, rng));
  return NeuroCModel::FromLayers(std::move(layers));
}

// Measures one (shape, encoding) cell. Models that overflow the board's 128 KB flash are
// still measured for cycles/energy on a roomy-flash machine (the cycle count is a
// property of the code, not the budget) and reported deployable=false.
CellResult Measure(size_t in_dim, size_t n_out, double density, EncodingKind kind,
                   uint64_t seed) {
  NeuroCModel model = MakeLayerModel(in_dim, n_out, density, kind, seed);
  CellResult r;
  r.kind = kind;
  r.flash_bytes = DeployedModel::EstimateProgramBytes(model);
  r.deployable = r.flash_bytes <= benchutil::kFlashBudget;
  MachineConfig config = Stm32f072rb().ToMachineConfig();
  if (!r.deployable) {
    config.flash_size = 4 * 1024 * 1024;
  }
  DeployedModel deployed = DeployedModel::Deploy(model, config);
  // The paper averages 100 timer runs; the simulator is cycle-deterministic (verified in
  // tests), so a single run is exact.
  r.latency_ms = deployed.MeasureLatencyMs();
  r.cycles = deployed.report().cycles_per_inference;
  r.energy = ProfileInferenceDetailed(deployed).energy;
  return r;
}

struct Regime {
  const char* name;
  const char* json_name;
  size_t in_dim;
  double density;
  uint64_t seed;
};

constexpr Regime kRegimes[] = {
    {"moderate density (8-bit delta streams)", "moderate_density", 784, 0.115, 41},
    {"high sparsity (16-bit absolute indices and delta gaps)", "high_sparsity", 2048,
     0.045, 43},
};
constexpr size_t kNouts[] = {32, 64, 128, 256};

void WriteCellJson(JsonWriter& w, const CellResult& r) {
  w.BeginObject();
  w.Key("encoding").Value(EncodingKindName(r.kind));
  w.Key("cycles_per_inference").Value(r.cycles);
  w.Key("latency_ms").ValueFixed(r.latency_ms, 4);
  w.Key("flash_bytes").Value(static_cast<uint64_t>(r.flash_bytes));
  w.Key("deployable").Value(r.deployable);
  w.Key("energy").BeginObject();
  w.Key("total_uj").ValueFixed(r.energy.total_uj(), 4);
  w.Key("core_uj").ValueFixed(r.energy.core_total_pj * 1e-6, 4);
  w.Key("flash_uj").ValueFixed(r.energy.flash_pj * 1e-6, 4);
  w.Key("sram_uj").ValueFixed(r.energy.sram_pj * 1e-6, 4);
  w.EndObject();
  w.EndObject();
}

const CellResult* FindCell(const std::vector<CellResult>& row, EncodingKind kind) {
  for (const CellResult& r : row) {
    if (r.kind == kind) {
      return &r;
    }
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_fig5_encoding_tradeoffs.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") != 0) {
      out_path = argv[i];
    }
  }

  std::printf("Fig. 5: encoding trade-offs on the simulated Cortex-M0 @ 8 MHz\n");
  JsonWriter w;
  w.BeginObject();
  w.Key("bench").Value("fig5_encoding_tradeoffs");
  w.Key("flash_budget_bytes").Value(static_cast<uint64_t>(benchutil::kFlashBudget));
  w.Key("regimes").BeginArray();

  for (const Regime& regime : kRegimes) {
    std::printf("\n--- %s: input dim %zu, density %.3f ---\n", regime.name, regime.in_dim,
                regime.density);
    std::printf("%6s |", "N_out");
    for (EncodingKind k : kAllEncodingKinds) {
      std::printf(" %8s_ms %8s_KB |", EncodingKindName(k), EncodingKindName(k));
    }
    std::printf("\n");

    w.BeginObject();
    w.Key("regime").Value(regime.json_name);
    w.Key("in_dim").Value(static_cast<uint64_t>(regime.in_dim));
    w.Key("density").ValueFixed(regime.density, 3);
    w.Key("rows").BeginArray();
    // Smallest N_out (if any) where unrolled overflows the flash budget while the block
    // format still fits — the flash side of the speed-for-flash crossover.
    size_t unrolled_overflow_nout = 0;
    for (const size_t nout : kNouts) {
      std::printf("%6zu |", nout);
      std::vector<CellResult> row;
      for (EncodingKind kind : kAllEncodingKinds) {
        row.push_back(Measure(regime.in_dim, nout, regime.density, kind, regime.seed));
        const CellResult& r = row.back();
        std::printf(" %11.2f %11.2f |", r.latency_ms,
                    static_cast<double>(r.flash_bytes) / 1024.0);
      }
      std::printf("\n");
      const CellResult* unrolled = FindCell(row, EncodingKind::kUnrolled);
      const CellResult* block = FindCell(row, EncodingKind::kBlock);
      const CellResult* delta = FindCell(row, EncodingKind::kDelta);
      if (unrolled_overflow_nout == 0 && !unrolled->deployable && block->deployable) {
        unrolled_overflow_nout = nout;
      }
      w.BeginObject();
      w.Key("n_out").Value(static_cast<uint64_t>(nout));
      w.Key("cycle_ratio_delta_vs_unrolled")
          .ValueFixed(static_cast<double>(delta->cycles) /
                          static_cast<double>(unrolled->cycles),
                      3);
      w.Key("encodings").BeginArray();
      for (const CellResult& r : row) {
        WriteCellJson(w, r);
      }
      w.EndArray();
      w.EndObject();
    }
    w.EndArray();
    w.Key("unrolled_overflow_n_out")
        .Value(static_cast<uint64_t>(unrolled_overflow_nout));
    w.EndObject();
    if (unrolled_overflow_nout != 0) {
      std::printf(
          "  unrolled overflows the %zu KB budget from N_out = %zu (block still fits)\n",
          benchutil::kFlashBudget / 1024, unrolled_overflow_nout);
    }
  }
  w.EndArray();

  // Headline acceptance point: density 0.05, the regime the unrolled codegen targets.
  // The ratio is simulated-cycle-deterministic and gated by bench_compare.
  {
    const size_t in_dim = 784;
    const size_t n_out = 128;
    const double density = 0.05;
    const CellResult delta = Measure(in_dim, n_out, density, EncodingKind::kDelta, 47);
    const CellResult unrolled =
        Measure(in_dim, n_out, density, EncodingKind::kUnrolled, 47);
    const double ratio =
        static_cast<double>(delta.cycles) / static_cast<double>(unrolled.cycles);
    std::printf(
        "\nheadline @ %zux%zu density %.2f: delta %llu cycles, unrolled %llu cycles "
        "(%.2fx fewer); flash delta %.1f KB vs unrolled %.1f KB\n",
        in_dim, n_out, density, static_cast<unsigned long long>(delta.cycles),
        static_cast<unsigned long long>(unrolled.cycles), ratio,
        static_cast<double>(delta.flash_bytes) / 1024.0,
        static_cast<double>(unrolled.flash_bytes) / 1024.0);
    w.Key("headline").BeginObject();
    w.Key("in_dim").Value(static_cast<uint64_t>(in_dim));
    w.Key("n_out").Value(static_cast<uint64_t>(n_out));
    w.Key("density").ValueFixed(density, 2);
    w.Key("delta_cycles").Value(delta.cycles);
    w.Key("unrolled_cycles").Value(unrolled.cycles);
    w.Key("cycle_ratio_delta_vs_unrolled").ValueFixed(ratio, 3);
    w.Key("delta_flash_bytes").Value(static_cast<uint64_t>(delta.flash_bytes));
    w.Key("unrolled_flash_bytes").Value(static_cast<uint64_t>(unrolled.flash_bytes));
    w.EndObject();
  }

  std::printf(
      "\nShape checks vs paper: delta lowest latency of the four stream formats; CSC\n"
      "highest latency and largest stream flash; the block format is the only one\n"
      "guaranteed 8-bit, and is the most compact in the high-sparsity regime. The\n"
      "unrolled codegen format is fastest everywhere and largest everywhere: it trades\n"
      "flash for cycles and loses deployability first as the layer grows.\n");
  w.EndObject();
  benchutil::WriteBenchJson(out_path, w);
  return 0;
}
