// Regenerates paper Fig. 5: latency (5a) and flash usage (5b) of the four sparse encodings
// on the simulated Cortex-M0, sweeping the output size N_out in powers of two from 32 to
// 256 for a single feedforward layer with fixed input dimension and sparsity (Sec. 4.3).
//
// Paper reference points at N_out = 256 (in their fixed configuration):
//   latency: delta 26 ms < mixed 28 ms < block 30 ms < CSC 32 ms
//   flash:   block 11.6 KB (smallest, 8-bit by construction) ... CSC 20.1 KB (largest)
//
// We report two sparsity regimes, because which format is smallest depends on whether the
// delta/mixed streams still fit 8 bits: a moderate-density regime (deltas fit one byte →
// delta is both fastest and compact) and a high-sparsity regime (gaps overflow one byte →
// only the block format keeps 8-bit arrays, and is clearly smallest, as in Fig. 5b).

#include <cstdio>

#include "src/core/synthetic.h"
#include "src/runtime/deployed_model.h"
#include "src/runtime/platform.h"

using namespace neuroc;

namespace {

void RunRegime(const char* title, size_t in_dim, double density, uint64_t seed) {
  std::printf("\n--- %s: input dim %zu, density %.3f ---\n", title, in_dim, density);
  std::printf("%6s |", "N_out");
  for (EncodingKind k : kAllEncodingKinds) {
    std::printf(" %8s_ms %8s_KB |", EncodingKindName(k), EncodingKindName(k));
  }
  std::printf("\n");
  for (size_t nout : {32u, 64u, 128u, 256u}) {
    std::printf("%6zu |", nout);
    for (EncodingKind kind : kAllEncodingKinds) {
      Rng rng(seed);  // same adjacency sample per row across encodings
      SyntheticNeuroCLayerSpec spec;
      spec.in_dim = in_dim;
      spec.out_dim = nout;
      spec.density = density;
      spec.encoding = kind;
      std::vector<QuantNeuroCLayer> layers;
      layers.push_back(MakeSyntheticNeuroCLayer(spec, rng));
      NeuroCModel model = NeuroCModel::FromLayers(std::move(layers));
      const size_t flash = DeployedModel::EstimateProgramBytes(model);
      DeployedModel deployed =
          DeployedModel::Deploy(model, Stm32f072rb().ToMachineConfig());
      // The paper averages 100 timer runs; the simulator is cycle-deterministic (verified
      // in tests), so a single run is exact.
      const double ms = deployed.MeasureLatencyMs();
      std::printf(" %11.2f %11.2f |", ms, static_cast<double>(flash) / 1024.0);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  std::printf("Fig. 5: encoding trade-offs on the simulated Cortex-M0 @ 8 MHz\n");
  RunRegime("moderate density (8-bit delta streams)", 784, 0.115, 41);
  RunRegime("high sparsity (16-bit absolute indices and delta gaps)", 2048, 0.045, 43);
  std::printf(
      "\nShape checks vs paper: delta lowest latency; CSC highest latency and largest\n"
      "flash; the block format is the only one guaranteed 8-bit, and is the most compact\n"
      "in the high-sparsity regime.\n");
  return 0;
}
