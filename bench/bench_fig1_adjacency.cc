// Regenerates paper Fig. 1: test accuracy against total parameter count for the adjacency
// strategies of Sec. 3.2 on the 8x8 digits task, one hidden layer, grid over sparsity
// levels and hidden sizes. Total parameters = neurons + nonzero adjacency entries (as in
// the paper).
//
// Paper finding: quantization-aware connectivity dominates — highest accuracy for a given
// parameter count; random/constrained-random/spatial strategies trail it.

#include <cstdio>
#include <string>

#include "src/data/synth.h"
#include "src/train/trainer.h"

using namespace neuroc;

namespace {

struct Point {
  std::string strategy;
  size_t hidden;
  double density;
  size_t params;
  float accuracy;
};

Point EvaluateFixed(const char* name, AdjacencyStrategy strategy, const Dataset& train,
                    const Dataset& test, size_t hidden, double density, uint64_t seed) {
  Rng rng(seed);
  FixedAdjacencyConfig cfg;
  cfg.strategy = strategy;
  cfg.density = density;
  cfg.fan_in = static_cast<size_t>(density * static_cast<double>(train.input_dim()) + 0.5);
  cfg.image_width = train.width;
  // Window radius approximating the target density: (2r+1)^2 / in_dim ≈ density.
  int radius = 0;
  while ((2 * radius + 1) * (2 * radius + 1) <
         density * static_cast<double>(train.input_dim())) {
    ++radius;
  }
  cfg.window_radius = radius;
  Network net = BuildFixedAdjacency(train.input_dim(),
                                    static_cast<size_t>(train.num_classes), hidden, cfg, rng);
  TrainConfig tc;
  tc.epochs = 10;
  tc.batch_size = 32;
  tc.learning_rate = 3e-3f;
  const TrainResult result = Train(net, train, test, tc);
  Point p;
  p.strategy = name;
  p.hidden = hidden;
  p.density = density;
  p.params = net.DeployedParameterCount();
  p.accuracy = result.best_test_accuracy;
  return p;
}

Point EvaluateLearned(const Dataset& train, const Dataset& test, size_t hidden,
                      double density, uint64_t seed) {
  Rng rng(seed);
  NeuroCSpec spec;
  spec.hidden = {hidden};
  spec.layer.ternary.target_density = static_cast<float>(density);
  Network net =
      BuildNeuroC(train.input_dim(), static_cast<size_t>(train.num_classes), spec, rng);
  TrainConfig tc;
  tc.epochs = 10;
  tc.batch_size = 32;
  tc.learning_rate = 3e-3f;
  const TrainResult result = Train(net, train, test, tc);
  Point p;
  p.strategy = "quantization";
  p.hidden = hidden;
  p.density = density;
  p.params = net.DeployedParameterCount();
  p.accuracy = result.best_test_accuracy;
  return p;
}

}  // namespace

int main() {
  Dataset all = MakeDigits8x8(3000, 20260706);
  Rng split_rng(1);
  auto [train, test] = all.Split(0.2, split_rng);
  std::printf("Fig. 1: accuracy vs total parameters per adjacency strategy (digits 8x8)\n");
  std::printf("train %zu / test %zu examples\n\n", train.num_examples(), test.num_examples());
  std::printf("%-14s %7s %8s %8s %9s\n", "strategy", "hidden", "density", "params",
              "accuracy");

  const size_t hiddens[] = {16, 32, 64};
  const double densities[] = {0.08, 0.15, 0.3};
  uint64_t seed = 100;
  for (size_t hidden : hiddens) {
    for (double density : densities) {
      Point pts[4] = {
          EvaluateFixed("random", AdjacencyStrategy::kRandom, train, test, hidden, density,
                        seed++),
          EvaluateFixed("constrained", AdjacencyStrategy::kConstrainedRandom, train, test,
                        hidden, density, seed++),
          EvaluateFixed("spatial", AdjacencyStrategy::kSpatialLocal, train, test, hidden,
                        density, seed++),
          EvaluateLearned(train, test, hidden, density, seed++),
      };
      for (const Point& p : pts) {
        std::printf("%-14s %7zu %8.2f %8zu %9.4f\n", p.strategy.c_str(), p.hidden, p.density,
                    p.params, p.accuracy);
      }
      std::printf("\n");
    }
  }
  std::printf("Shape check vs paper: the quantization-based strategy should reach the\n"
              "highest accuracy at comparable parameter counts in most grid cells.\n");
  return 0;
}
