// Host-side simulator throughput: three decode/execute paths (legacy decode-every-step,
// predecoded-instruction cache, block-compiled) × the four adjacency encodings, plus
// RandomSearch wall-clock at 1 vs N threads.
//
// Every reported paper metric (cycles, latency) flows through the CPU's execute loop, so
// simulation speed bounds how many candidate architectures a search can afford. This bench
// tracks what the decode cache and the block compiler (src/sim/cpu.*) buy in host
// wall-clock per simulated inference and in simulated MIPS, verifies cycle counts are
// bit-identical across all three paths, and times RandomSearch across thread counts
// (asserting the results are byte-identical, the contract that makes parallel search safe
// to use for paper numbers). Emits BENCH_sim_throughput.json.
//
// `--smoke` shrinks repetitions/trials to seconds so the tier-1 ctest sweep can run this
// binary and keep it from bit-rotting.

#include <array>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/core/encoding.h"
#include "src/core/synthetic.h"
#include "src/data/synth.h"
#include "src/obs/block_profiler.h"
#include "src/obs/json_writer.h"
#include "src/obs/sim_profiler.h"
#include "src/runtime/deployed_model.h"
#include "src/runtime/profile.h"
#include "src/runtime/search.h"

namespace neuroc {
namespace {

// Best of kRepeats timed runs — a shared host can slow any single run arbitrarily but
// cannot make one faster than the machine allows. The three execute paths are timed in
// alternating blocks so a noisy window penalizes all of them rather than skewing a ratio.
constexpr int kRepeats = 5;
// legacy / cached / block, plus three profiled paths: block-compiled execution with the
// block-granular counters (block_profiled) and the step-interpreter CpuProbe profiler
// over both step paths (step_profiled = predecode cache + probe, legacy_profiled =
// decode-every-step + probe, the pre-block-profiler default). The profiled rows bound
// what turning attribution on costs on each path.
constexpr int kModes = 6;

double Seconds(std::chrono::steady_clock::time_point t0,
               std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

NeuroCModel MakeBenchModel(EncodingKind kind) {
  Rng rng(3 + static_cast<uint64_t>(kind));
  SyntheticNeuroCLayerSpec l0;
  l0.in_dim = 256;
  l0.out_dim = 64;
  l0.density = 0.15;
  l0.encoding = kind;
  SyntheticNeuroCLayerSpec l1 = l0;
  l1.in_dim = 64;
  l1.out_dim = 10;
  l1.relu = false;
  std::vector<QuantNeuroCLayer> layers;
  layers.push_back(MakeSyntheticNeuroCLayer(l0, rng));
  layers.push_back(MakeSyntheticNeuroCLayer(l1, rng));
  return NeuroCModel::FromLayers(std::move(layers));
}

struct InferenceResult {
  std::string encoding;
  std::string decode;  // "legacy" | "cached" | "block"
  uint64_t cycles_per_inference = 0;
  uint64_t instructions_per_inference = 0;
  double wall_ms_per_inference = 0.0;
  double sim_mips = 0.0;  // simulated instructions retired per host second / 1e6
};

// One timed block: `reps` back-to-back inferences. Returns wall seconds and checks the
// reported cycle count never drifts across repetitions.
double TimeBlock(DeployedModel& deployed, const std::vector<int8_t>& input, int reps,
                 InferenceResult& r) {
  const uint64_t instr0 = deployed.machine().cpu().instructions();
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) {
    deployed.Predict(input);
  }
  const auto t1 = std::chrono::steady_clock::now();
  const uint64_t instr = deployed.machine().cpu().instructions() - instr0;
  r.instructions_per_inference = instr / static_cast<uint64_t>(reps);
  // The reported cycle count must not depend on the decode path or the repetition.
  NEUROC_CHECK(deployed.report().cycles_per_inference == r.cycles_per_inference);
  return Seconds(t0, t1);
}

// Measures the six execute/profile paths for one encoding, alternating timed blocks
// kRepeats times and keeping the best block of each.
// Returns {legacy, cached, block, block_profiled, step_profiled, legacy_profiled}.
std::array<InferenceResult, kModes> RunInferenceSweep(EncodingKind kind, int reps) {
  DeployedModel legacy = DeployedModel::Deploy(MakeBenchModel(kind));
  DeployedModel cached = DeployedModel::Deploy(MakeBenchModel(kind));
  DeployedModel block = DeployedModel::Deploy(MakeBenchModel(kind));
  DeployedModel block_prof = DeployedModel::Deploy(MakeBenchModel(kind));
  DeployedModel step_prof = DeployedModel::Deploy(MakeBenchModel(kind));
  DeployedModel legacy_prof = DeployedModel::Deploy(MakeBenchModel(kind));
  legacy.machine().cpu().EnableDecodeCache(false);
  cached.machine().cpu().EnableBlockCompile(false);  // predecode cache only
  legacy_prof.machine().cpu().EnableDecodeCache(false);
  BlockProfiler block_profiler(block_prof.machine().cpu());
  SimProfiler step_profiler;
  ScopedCpuProbe attach_step(step_prof.machine().cpu(), &step_profiler);
  SimProfiler legacy_profiler;
  ScopedCpuProbe attach_legacy(legacy_prof.machine().cpu(), &legacy_profiler);
  Rng rng(17);
  const std::vector<int8_t> input = MakeRandomInput(legacy.input_dim(), rng);
  std::array<InferenceResult, kModes> out;
  out[0].decode = "legacy";
  out[1].decode = "cached";
  out[2].decode = "block";
  out[3].decode = "block_profiled";
  out[4].decode = "step_profiled";
  out[5].decode = "legacy_profiled";
  std::array<DeployedModel*, kModes> models = {&legacy,     &cached,    &block,
                                               &block_prof, &step_prof, &legacy_prof};
  std::array<double, kModes> best = {};
  for (int which = 0; which < kModes; ++which) {
    out[which].encoding = EncodingKindName(kind);
    models[which]->Predict(input);  // warm-up: builds the decode/block caches untimed
    out[which].cycles_per_inference = models[which]->report().cycles_per_inference;
  }
  for (int rep = 0; rep < kRepeats; ++rep) {
    for (int which = 0; which < kModes; ++which) {
      const double seconds = TimeBlock(*models[which], input, reps, out[which]);
      if (best[which] == 0.0 || seconds < best[which]) {
        best[which] = seconds;
      }
    }
  }
  for (int which = 0; which < kModes; ++which) {
    out[which].wall_ms_per_inference = best[which] * 1000.0 / reps;
    out[which].sim_mips =
        static_cast<double>(out[which].instructions_per_inference) * reps /
        (best[which] * 1e6);
  }
  return out;
}

struct SearchTiming {
  unsigned threads = 0;
  double wall_ms = 0.0;
  SearchResult result;
};

SearchTiming RunSearch(const Dataset& train, const Dataset& test, unsigned threads,
                       int trials, int epochs) {
  ThreadPool::SetGlobalThreads(threads);
  SearchSpace space;
  space.width_choices = {16, 32};
  space.max_hidden_layers = 1;
  space.density_choices = {0.1f, 0.2f};
  TrainConfig cfg;
  cfg.epochs = epochs;
  cfg.batch_size = 32;
  cfg.learning_rate = 3e-3f;
  SearchTiming t;
  t.threads = threads;
  const auto t0 = std::chrono::steady_clock::now();
  t.result = RandomSearch(train, test, space, {}, trials, cfg, 123);
  t.wall_ms = Seconds(t0, std::chrono::steady_clock::now()) * 1000.0;
  return t;
}

bool ByteIdentical(const SearchResult& a, const SearchResult& b) {
  if (a.candidates.size() != b.candidates.size() || a.pareto != b.pareto ||
      a.best != b.best) {
    return false;
  }
  for (size_t i = 0; i < a.candidates.size(); ++i) {
    const SearchCandidate& x = a.candidates[i];
    const SearchCandidate& y = b.candidates[i];
    if (x.description != y.description || x.spec.hidden != y.spec.hidden ||
        x.accuracy != y.accuracy || x.program_bytes != y.program_bytes ||
        x.latency_ms != y.latency_ms || x.feasible != y.feasible) {
      return false;
    }
  }
  return true;
}

}  // namespace
}  // namespace neuroc

int main(int argc, char** argv) {
  using namespace neuroc;
  bool smoke = false;
  std::string out_path = "BENCH_sim_throughput.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }
  const int reps = smoke ? 20 : 400;
  const int trials = smoke ? 2 : 4;
  const int epochs = smoke ? 1 : 2;

  std::printf("sim throughput, 256-64-10 @ density 0.15, %d inferences per timing rep\n",
              reps);
  std::printf("%-8s %-16s %14s %14s %12s %10s\n", "encoding", "decode", "cycles/inf",
              "instr/inf", "wall_ms/inf", "sim_MIPS");
  std::vector<InferenceResult> inference;
  for (EncodingKind kind : kAllEncodingKinds) {
    for (const InferenceResult& r : RunInferenceSweep(kind, reps)) {
      std::printf("%-8s %-16s %14llu %14llu %12.4f %10.1f\n", r.encoding.c_str(),
                  r.decode.c_str(), static_cast<unsigned long long>(r.cycles_per_inference),
                  static_cast<unsigned long long>(r.instructions_per_inference),
                  r.wall_ms_per_inference, r.sim_mips);
      inference.push_back(r);
    }
  }
  // The execute path (profiled or not) must not change a single reported cycle or
  // retired instruction.
  for (size_t i = 0; i + kModes - 1 < inference.size(); i += kModes) {
    for (size_t m = 1; m < kModes; ++m) {
      NEUROC_CHECK(inference[i].cycles_per_inference ==
                   inference[i + m].cycles_per_inference);
      NEUROC_CHECK(inference[i].instructions_per_inference ==
                   inference[i + m].instructions_per_inference);
    }
  }

  const Dataset all = MakeDigits8x8(smoke ? 200 : 500, 11);
  Rng split_rng(12);
  auto [train, test] = all.Split(0.25, split_rng);
  const SearchTiming s1 = RunSearch(train, test, 1, trials, epochs);
  const SearchTiming s4 = RunSearch(train, test, 4, trials, epochs);
  ThreadPool::SetGlobalThreads(0);  // restore default
  const bool identical = ByteIdentical(s1.result, s4.result);
  NEUROC_CHECK(identical);
  std::printf("search: %d trials  1t %.0f ms  4t %.0f ms  byte-identical %s\n", trials,
              s1.wall_ms, s4.wall_ms, identical ? "yes" : "no");

  JsonWriter w;
  w.BeginObject();
  w.Key("bench").Value("sim_throughput");
  w.Key("model").Value("256-64-10 density 0.15");
  w.Key("reps_per_timing").Value(static_cast<uint64_t>(reps));
  w.Key("smoke").Value(smoke ? 1 : 0);
  w.Key("host_threads_available").Value(DefaultThreadCount());
  w.Key("inference").BeginArray();
  for (const InferenceResult& r : inference) {
    w.BeginObject();
    w.Key("encoding").Value(r.encoding);
    w.Key("decode").Value(r.decode);
    w.Key("cycles_per_inference").Value(r.cycles_per_inference);
    w.Key("instructions_per_inference").Value(r.instructions_per_inference);
    w.Key("wall_ms_per_inference").ValueFixed(r.wall_ms_per_inference, 6);
    w.Key("sim_mips").ValueFixed(r.sim_mips, 1);
    w.EndObject();
  }
  w.EndArray();
  w.Key("speedups").BeginObject();
  for (size_t i = 0; i + kModes - 1 < inference.size(); i += kModes) {
    const InferenceResult& legacy = inference[i];
    const InferenceResult& cached = inference[i + 1];
    const InferenceResult& block = inference[i + 2];
    char key[64];
    std::snprintf(key, sizeof(key), "cached_vs_legacy_%s", legacy.encoding.c_str());
    w.Key(key).ValueFixed(legacy.wall_ms_per_inference / cached.wall_ms_per_inference, 3);
    std::snprintf(key, sizeof(key), "block_vs_cached_%s", legacy.encoding.c_str());
    w.Key(key).ValueFixed(cached.wall_ms_per_inference / block.wall_ms_per_inference, 3);
    std::snprintf(key, sizeof(key), "block_vs_legacy_%s", legacy.encoding.c_str());
    w.Key(key).ValueFixed(legacy.wall_ms_per_inference / block.wall_ms_per_inference, 3);
  }
  w.Key("search_4t_vs_1t").ValueFixed(s1.wall_ms / s4.wall_ms, 3);
  w.EndObject();
  // Profiling cost: the block-granular profiler must stay within a few percent of the
  // unprofiled block path and far ahead of step-interpreter profiling (the ratio the
  // obs PR's ≥5x acceptance bar reads).
  w.Key("profiling").BeginObject();
  for (size_t i = 0; i + kModes - 1 < inference.size(); i += kModes) {
    const InferenceResult& block = inference[i + 2];
    const InferenceResult& bp = inference[i + 3];
    const InferenceResult& sp = inference[i + 4];
    const InferenceResult& lp = inference[i + 5];
    char key[64];
    std::snprintf(key, sizeof(key), "block_profiled_overhead_%s",
                  block.encoding.c_str());
    w.Key(key).ValueFixed(bp.wall_ms_per_inference / block.wall_ms_per_inference, 3);
    std::snprintf(key, sizeof(key), "block_profiled_vs_step_profiled_%s",
                  block.encoding.c_str());
    w.Key(key).ValueFixed(sp.wall_ms_per_inference / bp.wall_ms_per_inference, 3);
    std::snprintf(key, sizeof(key), "block_profiled_vs_legacy_profiled_%s",
                  block.encoding.c_str());
    w.Key(key).ValueFixed(lp.wall_ms_per_inference / bp.wall_ms_per_inference, 3);
  }
  w.EndObject();
  // Energy proxy per inference (deterministic: derived from attributed cycles and
  // memory-access counts, not wall time).
  w.Key("energy").BeginObject();
  for (EncodingKind kind : kAllEncodingKinds) {
    DeployedModel d = DeployedModel::Deploy(MakeBenchModel(kind));
    const InferenceProfile p = ProfileInferenceDetailed(d);
    w.Key(EncodingKindName(kind)).BeginObject();
    w.Key("total_uj").ValueFixed(p.energy.total_uj(), 4);
    w.Key("core_uj").ValueFixed(p.energy.core_total_pj * 1e-6, 4);
    w.Key("flash_uj").ValueFixed(p.energy.flash_pj * 1e-6, 4);
    w.Key("sram_uj").ValueFixed(p.energy.sram_pj * 1e-6, 4);
    w.Key("avg_power_mw")
        .ValueFixed(p.energy.AvgPowerMw(p.summary.cycles, d.machine().config().clock_hz),
                    3);
    w.EndObject();
  }
  w.EndObject();
  // Context for the ratios: the legacy comparator here is the decode-every-step path of
  // the *current* binary, which already shares the inlined MemoryMap accessors, and the
  // search speedup is bounded by the cores the host actually grants us.
  w.Key("notes").BeginArray();
  w.Value(
      "cached_vs_legacy compares decode paths within this binary; decode+fetch is "
      "~50% of a legacy step, so the ratio is Amdahl-capped near 2x");
  w.Value(
      "block fuses straight-line basic blocks into one dispatch with batched "
      "accounting and lazy APSR flags, breaking the per-step Amdahl cap");
  w.Value("search_4t_vs_1t cannot exceed 1x when host_threads_available is 1");
  w.EndArray();
  w.Key("search").BeginObject();
  w.Key("trials").Value(static_cast<uint64_t>(trials));
  w.Key("epochs").Value(static_cast<uint64_t>(epochs));
  w.Key("threads_1_wall_ms").ValueFixed(s1.wall_ms, 1);
  w.Key("threads_4_wall_ms").ValueFixed(s4.wall_ms, 1);
  w.Key("results_byte_identical").Value(identical ? 1 : 0);
  w.EndObject();
  w.EndObject();
  benchutil::WriteBenchJson(out_path, w);
  return 0;
}
