// Sparsity ablation (paper Sec. 6: "a full ablation of Neuro-C's design parameters, such as
// connectivity patterns, sparsity levels, or per-neuron scaling, would provide a
// finer-grained understanding"): sweeps the target adjacency density of a fixed
// architecture on the MNIST-like task and reports the accuracy / latency / program-memory
// trade-off, plus the per-neuron-scale on/off axis at the best density.

#include <cstdio>

#include "bench/bench_util.h"

using namespace neuroc;
using namespace neuroc::benchutil;

int main() {
  Dataset all = MakeMnistLike(4000, 31415);
  Rng split_rng(1);
  auto [train, test] = all.Split(0.2, split_rng);
  TrainConfig cfg;
  cfg.epochs = 6;
  cfg.batch_size = 64;
  cfg.learning_rate = 2e-3f;
  cfg.lr_decay = 0.85f;

  std::printf("Sparsity ablation: Neuro-C 784->128->10, density sweep (%zu train / %zu "
              "test)\n\n", train.num_examples(), test.num_examples());
  std::printf("%-10s %9s %9s %9s %9s\n", "density", "int8_acc", "params", "flash_KB",
              "lat_ms");
  uint64_t seed = 7000;
  for (float density : {0.03f, 0.05f, 0.08f, 0.12f, 0.2f, 0.35f, 0.5f}) {
    NeuroCSpec spec;
    spec.hidden = {128};
    spec.layer.ternary.target_density = density;
    ModelResult r = EvaluateNeuroC("nc", train, test, spec, cfg, seed++);
    std::printf("%-10.2f %9.4f %9zu %9.1f %9.2f\n", density, r.quant_accuracy,
                r.deployed_params, r.program_bytes / 1024.0, r.latency_ms);
  }

  std::printf("\nPer-neuron-scale axis at a fixed density (0.12):\n");
  std::printf("%-12s %9s %9s %9s\n", "variant", "int8_acc", "flash_KB", "lat_ms");
  for (bool use_scale : {true, false}) {
    NeuroCSpec spec;
    spec.hidden = {128};
    spec.layer.ternary.target_density = 0.12f;
    spec.layer.use_per_neuron_scale = use_scale;
    ModelResult r = EvaluateNeuroC(use_scale ? "with w_j" : "without w_j", train, test, spec,
                                   cfg, 7100);
    std::printf("%-12s %9.4f %9.1f %9.2f\n", use_scale ? "with w_j" : "without w_j",
                r.quant_accuracy, r.program_bytes / 1024.0, r.latency_ms);
  }

  std::printf("\nShape checks: accuracy saturates with density while latency and memory grow\n"
              "linearly — the knee is the deployment sweet spot; removing w_j costs accuracy\n"
              "at every density.\n");
  return 0;
}
