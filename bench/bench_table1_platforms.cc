// Regenerates paper Table 1: qualitative classification of MCU resources.
//
// Paper rows: Low (no FPU/DSP/SIMD, <128 KB RAM, <512 KB flash, e.g. STM32C0/F0/L0),
// Medium (FPU + basic SIMD, 128–512 KB RAM, e.g. NXP Kinetis K), Advanced (double FPU,
// vector SIMD, >512 KB RAM, e.g. Renesas RA8D1).

#include <cstdio>

#include "src/runtime/platform.h"

using namespace neuroc;

int main() {
  std::printf("Table 1: Qualitative analysis of MCU resources (device registry dump)\n\n");
  std::printf("%-9s %-14s %-11s %5s %5s %8s %4s %4s %5s\n", "Class", "Device", "Core",
              "RAM", "Flash", "Clock", "FPU", "DSP", "SIMD");
  std::printf("%-9s %-14s %-11s %5s %5s %8s %4s %4s %5s\n", "", "", "", "(KB)", "(KB)",
              "(MHz)", "", "", "");
  for (const PlatformSpec& p : AllPlatforms()) {
    std::printf("%-9s %-14s %-11s %5u %5u %8.0f %4s %4s %5s\n", McuClassName(p.mcu_class),
                p.name.c_str(), p.core.c_str(), p.ram_bytes / 1024, p.flash_bytes / 1024,
                p.clock_hz / 1e6, p.has_fpu ? "yes" : "no", p.has_dsp_mac ? "yes" : "no",
                p.has_simd ? "yes" : "no");
  }
  std::printf("\nEvaluation platform (paper Sec. 5.1): %s @ %.0f MHz, %u KB RAM, %u KB "
              "flash.\n",
              Stm32f072rb().name.c_str(), Stm32f072rb().clock_hz / 1e6,
              Stm32f072rb().ram_bytes / 1024, Stm32f072rb().flash_bytes / 1024);
  return 0;
}
