// Regenerates paper Fig. 2: inference latency of convolutional vs fully connected layers on
// the simulated Cortex-M0 under the paper's matched-MACC protocol (Sec. 3.3): for a 16x16
// input with C = 1, the FC layer's N_out equals the CNN layer's K*S^2 (Eq. 10).
//
// Paper finding: FC layers consistently achieve lower latency than their convolutional
// counterparts due to simpler memory access and control flow.

#include <cstdio>

#include "src/core/synthetic.h"
#include "src/kernels/conv_desc.h"
#include "src/kernels/kernel_set.h"
#include "src/runtime/deployed_model.h"
#include "src/runtime/platform.h"

using namespace neuroc;

namespace {

struct CasePair {
  const char* name;
  int kernel_size;  // S
  int filters;      // K
};

struct Measured {
  size_t maccs;
  uint64_t cycles;
  double ms;
};

Measured MeasureFc(size_t in_dim, size_t out_dim, Rng& rng) {
  std::vector<QuantDenseLayer> layers;
  layers.push_back(MakeSyntheticDenseLayer(in_dim, out_dim, /*relu=*/false, /*shift=*/9, rng));
  MlpModel model = MlpModel::FromLayers(std::move(layers));
  DeployedModel deployed = DeployedModel::Deploy(model, Stm32f072rb().ToMachineConfig());
  Measured m;
  m.maccs = in_dim * out_dim;
  m.ms = deployed.MeasureLatencyMs();
  m.cycles = deployed.report().cycles_per_inference;
  return m;
}

Measured MeasureConv(const ConvLayerSpec& spec, Rng& rng) {
  const size_t field = static_cast<size_t>(spec.channels) * spec.kernel_size *
                       spec.kernel_size;
  std::vector<int8_t> weights(field * static_cast<size_t>(spec.filters));
  for (auto& w : weights) {
    w = static_cast<int8_t>(rng.NextInt(-128, 127));
  }
  std::vector<int32_t> bias(static_cast<size_t>(spec.filters));
  for (auto& b : bias) {
    b = static_cast<int32_t>(rng.NextInt(-1000, 1000));
  }
  Machine machine(Stm32f072rb().ToMachineConfig());
  KernelSet kernels = KernelSet::Build({}, machine.config().flash_base,
                                       /*include_conv=*/true);
  machine.LoadBytes(kernels.program().base_addr, kernels.program().bytes);
  const uint32_t data_base =
      machine.config().flash_base + ((static_cast<uint32_t>(kernels.code_bytes()) + 3u) & ~3u);
  PackedConvLayer packed = PackConvLayer(machine, spec, weights, bias, data_base,
                                         machine.config().ram_base);
  Measured m;
  m.maccs = packed.macc_count;
  m.cycles = machine.CallFunction(kernels.ConvEntry(), {packed.desc_addr});
  m.ms = machine.CyclesToMs(m.cycles);
  return m;
}

}  // namespace

int main() {
  constexpr int kInputSize = 16;  // 16x16 = 256 inputs, C = 1 (paper Sec. 3.3)
  Rng rng(7);
  std::printf("Fig. 2: FC vs CNN latency at matched MACCs (Cortex-M0 sim @ 8 MHz)\n");
  std::printf("input %dx%d, C=1; FC N_out = K*S^2 per the paper's protocol\n\n", kInputSize,
              kInputSize);
  std::printf("%-6s %-18s %8s %10s %9s %11s\n", "case", "layer", "MACCs", "cycles", "lat_ms",
              "cyc/MACC");
  // Kernel sizes keep the paper's M ≈ N approximation (Eq. 10) reasonable: with valid
  // padding M = N - S + 1, so large S shrinks the CNN's true MACC count well below the
  // matched FC's and the equal-MACC premise of the comparison no longer holds.
  const CasePair cases[] = {{"1", 3, 8}, {"2", 4, 8}};
  for (const CasePair& c : cases) {
    const int n_out = c.filters * c.kernel_size * c.kernel_size;
    ConvLayerSpec conv;
    conv.input_size = kInputSize;
    conv.channels = 1;
    conv.kernel_size = c.kernel_size;
    conv.filters = c.filters;
    conv.shift = 9;
    const Measured mc = MeasureConv(conv, rng);
    const Measured mf = MeasureFc(static_cast<size_t>(kInputSize) * kInputSize,
                                  static_cast<size_t>(n_out), rng);
    char label[64];
    std::snprintf(label, sizeof(label), "CNN%s (S=%d,K=%d)", c.name, c.kernel_size,
                  c.filters);
    std::printf("%-6s %-18s %8zu %10llu %9.2f %11.2f\n", c.name, label, mc.maccs,
                static_cast<unsigned long long>(mc.cycles), mc.ms,
                static_cast<double>(mc.cycles) / static_cast<double>(mc.maccs));
    std::snprintf(label, sizeof(label), "FC%s  (256->%d)", c.name, n_out);
    std::printf("%-6s %-18s %8zu %10llu %9.2f %11.2f\n", c.name, label, mf.maccs,
                static_cast<unsigned long long>(mf.cycles), mf.ms,
                static_cast<double>(mf.cycles) / static_cast<double>(mf.maccs));
    std::printf("%-6s FC speedup over CNN at equal-protocol MACCs: %.2fx (per-MACC %.2fx)\n\n",
                "", mc.ms / mf.ms,
                (static_cast<double>(mc.cycles) / static_cast<double>(mc.maccs)) /
                    (static_cast<double>(mf.cycles) / static_cast<double>(mf.maccs)));
  }
  std::printf("Shape check vs paper: FC exhibits lower per-MACC latency in both cases.\n");
  return 0;
}
