// Host-side training throughput: dense-vs-sparse kernels × 1-vs-N threads.
//
// The trainer historically ran the ternary adjacency through a dense float MatMul and
// re-ternarized the latent matrix on every forward. This bench tracks what the sparse
// signed-index path (src/train/sparse_kernels.*) and the shared thread pool buy on the
// paper's layer shapes (256→128→64→10), in examples/sec and epoch wall-clock, and emits
// BENCH_train_throughput.json so the perf trajectory is tracked across PRs.
//
// The dense baseline (use_sparse_kernels = false) deliberately reproduces the legacy
// trainer, including its per-forward re-ternarization — that is the path being replaced.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/data/dataset.h"
#include "src/obs/json_writer.h"
#include "src/train/network.h"
#include "src/train/trainer.h"

namespace neuroc {
namespace {

constexpr size_t kInputDim = 256;  // 16×16 raster
constexpr size_t kTrainExamples = 4096;
constexpr size_t kTestExamples = 1024;
constexpr int kEpochs = 2;
constexpr size_t kBatchSize = 64;

// Random raster-like dataset: ~half the pixels are exactly zero (like digit backgrounds),
// so the activation-sparsity skips in the kernels see realistic data. Labels are random —
// throughput does not depend on learnability.
Dataset MakeThroughputDataset(size_t n, uint64_t seed) {
  Dataset ds;
  ds.name = "throughput-synthetic";
  ds.width = 16;
  ds.height = 16;
  ds.channels = 1;
  ds.num_classes = 10;
  ds.images = Tensor({n, kInputDim});
  ds.labels.resize(n);
  Rng rng(seed);
  for (float& v : ds.images.flat()) {
    v = rng.NextBool(0.5) ? 0.0f : rng.NextUniform(0.0f, 1.0f);
  }
  for (int& l : ds.labels) {
    l = static_cast<int>(rng.NextBounded(10));
  }
  return ds;
}

struct RunResult {
  std::string kernels;
  unsigned threads = 1;
  float density = 0.0f;
  double examples_per_sec = 0.0;
  double epoch_ms = 0.0;
  float final_loss = 0.0f;
};

// Best of kRepeats timed runs — the standard throughput-bench protocol, since a shared host
// can slow any single run arbitrarily but cannot make one faster than the machine allows.
// The thread counts under comparison are timed in alternating runs (1t, Nt, 1t, Nt, ...)
// so a noisy window on a shared host penalizes both sides instead of skewing the ratio.
constexpr int kRepeats = 3;

std::vector<RunResult> RunConfig(const Dataset& train, const Dataset& test, bool sparse,
                                 const std::vector<unsigned>& thread_counts, float density) {
  NeuroCSpec spec;
  spec.hidden = {128, 64};
  spec.layer.ternary.target_density = density;
  spec.layer.use_sparse_kernels = sparse;
  std::vector<RunResult> out(thread_counts.size());
  for (size_t i = 0; i < thread_counts.size(); ++i) {
    out[i].kernels = sparse ? "sparse" : "dense";
    out[i].threads = thread_counts[i];
    out[i].density = density;
  }
  for (int rep = 0; rep < kRepeats; ++rep) {
    for (size_t i = 0; i < thread_counts.size(); ++i) {
      ThreadPool::SetGlobalThreads(thread_counts[i]);
      Rng rng(7);
      Network net = BuildNeuroC(kInputDim, 10, spec, rng);
      TrainConfig cfg;
      cfg.epochs = kEpochs;
      cfg.batch_size = kBatchSize;
      cfg.learning_rate = 2e-3f;
      const auto t0 = std::chrono::steady_clock::now();
      const TrainResult tr = Train(net, train, test, cfg);
      const auto t1 = std::chrono::steady_clock::now();
      const double seconds = std::chrono::duration<double>(t1 - t0).count();
      const double eps = static_cast<double>(train.num_examples()) * kEpochs / seconds;
      if (eps > out[i].examples_per_sec) {
        out[i].examples_per_sec = eps;
        out[i].epoch_ms = seconds * 1000.0 / kEpochs;
      }
      out[i].final_loss = tr.history.back().train_loss;  // deterministic across reps
    }
  }
  return out;
}

void WriteJson(const std::vector<RunResult>& results, const std::string& path) {
  JsonWriter w;
  w.BeginObject();
  w.Key("bench").Value("train_throughput");
  w.Key("network").Value("256-128-64-10");
  w.Key("train_examples").Value(static_cast<uint64_t>(kTrainExamples));
  w.Key("test_examples").Value(static_cast<uint64_t>(kTestExamples));
  w.Key("batch_size").Value(static_cast<uint64_t>(kBatchSize));
  w.Key("epochs").Value(kEpochs);
  w.Key("configs").BeginArray();
  for (const RunResult& r : results) {
    w.BeginObject();
    w.Key("kernels").Value(r.kernels);
    w.Key("threads").Value(r.threads);
    w.Key("density").Value(static_cast<double>(r.density), 2);
    w.Key("examples_per_sec").Value(r.examples_per_sec, 8);
    w.Key("epoch_ms").Value(r.epoch_ms, 8);
    w.Key("final_loss").Value(static_cast<double>(r.final_loss), 4);
    w.EndObject();
  }
  w.EndArray();
  // Headline ratios: sparse wins at 1 thread (kernel effect alone), then with threading.
  w.Key("speedups").BeginObject();
  for (const RunResult& base : results) {
    if (base.kernels != "dense" || base.threads != 1) {
      continue;
    }
    for (const RunResult& r : results) {
      if (r.kernels != "sparse" || r.density != base.density) {
        continue;
      }
      char key[96];
      std::snprintf(key, sizeof(key), "sparse_%ut_vs_dense_1t_density_%.2f", r.threads,
                    r.density);
      w.Key(key).Value(r.examples_per_sec / base.examples_per_sec, 3);
    }
  }
  w.EndObject();
  w.EndObject();
  benchutil::WriteBenchJson(path, w);
}

}  // namespace
}  // namespace neuroc

int main(int argc, char** argv) {
  using namespace neuroc;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_train_throughput.json";
  const Dataset train = MakeThroughputDataset(kTrainExamples, 11);
  const Dataset test = MakeThroughputDataset(kTestExamples, 12);
  unsigned n_threads = DefaultThreadCount();
  if (n_threads == 1) {
    n_threads = 4;  // single-core host: still exercise the pooled path (expect ~1x)
  }
  std::printf("train throughput, 256-128-64-10, batch %zu, %d epochs, %zu train examples\n",
              kBatchSize, kEpochs, kTrainExamples);
  std::printf("%-8s %8s %8s %14s %10s %10s\n", "kernels", "threads", "density", "examples/s",
              "epoch_ms", "loss");
  std::vector<RunResult> results;
  for (float density : {0.05f, 0.1f, 0.3f}) {
    for (bool sparse : {false, true}) {
      for (const RunResult& r : RunConfig(train, test, sparse, {1u, n_threads}, density)) {
        std::printf("%-8s %8u %8.2f %14.1f %10.1f %10.4f\n", r.kernels.c_str(), r.threads,
                    r.density, r.examples_per_sec, r.epoch_ms, r.final_loss);
        results.push_back(r);
      }
    }
  }
  ThreadPool::SetGlobalThreads(0);  // restore default
  WriteJson(results, out_path);
  return 0;
}
