// Shared helpers for the paper-reproduction benches: train/quantize/deploy pipelines and
// fixed-width table printing. Each bench binary regenerates one table or figure of the
// paper; EXPERIMENTS.md records paper-vs-measured values.

#ifndef NEUROC_BENCH_BENCH_UTIL_H_
#define NEUROC_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/core/mlp_model.h"
#include "src/core/neuroc_model.h"
#include "src/data/synth.h"
#include "src/obs/json_writer.h"
#include "src/runtime/deployed_model.h"
#include "src/runtime/platform.h"
#include "src/train/trainer.h"

namespace neuroc {
namespace benchutil {

// Program-memory budget of the paper's evaluation board.
inline constexpr size_t kFlashBudget = 128 * 1024;

struct ModelResult {
  std::string name;
  float float_accuracy = 0.0f;
  float quant_accuracy = 0.0f;
  size_t deployed_params = 0;
  size_t program_bytes = 0;
  double latency_ms = 0.0;
  bool deployable = false;
  bool converged = true;
};

// Trains an MLP baseline and measures its quantized deployment (latency measured only when
// the model fits flash — exactly the paper's deployability rule).
inline ModelResult EvaluateMlp(const std::string& name, const Dataset& train,
                               const Dataset& test, const MlpSpec& spec,
                               const TrainConfig& cfg, uint64_t seed) {
  Rng rng(seed);
  Network net = BuildMlp(train.input_dim(), static_cast<size_t>(train.num_classes), spec, rng);
  const TrainResult tr = Train(net, train, test, cfg);
  ModelResult r;
  r.name = name;
  r.float_accuracy = tr.final_test_accuracy;
  r.converged = tr.final_test_accuracy > 1.5f / static_cast<float>(train.num_classes);
  r.deployed_params = net.DeployedParameterCount();
  MlpModel model = MlpModel::FromTrained(net, train);
  r.quant_accuracy = model.EvaluateAccuracy(QuantizeInputs(test));
  r.program_bytes = DeployedModel::EstimateProgramBytes(model);
  r.deployable = r.program_bytes <= kFlashBudget;
  if (r.deployable) {
    DeployedModel deployed = DeployedModel::Deploy(model, Stm32f072rb().ToMachineConfig());
    r.latency_ms = deployed.MeasureLatencyMs();
  }
  return r;
}

// Trains a Neuro-C model (or its TNN ablation via spec.layer.use_per_neuron_scale) and
// measures its quantized deployment.
inline ModelResult EvaluateNeuroC(const std::string& name, const Dataset& train,
                                  const Dataset& test, const NeuroCSpec& spec,
                                  const TrainConfig& cfg, uint64_t seed,
                                  EncodingKind encoding = EncodingKind::kBlock) {
  Rng rng(seed);
  Network net =
      BuildNeuroC(train.input_dim(), static_cast<size_t>(train.num_classes), spec, rng);
  const TrainResult tr = Train(net, train, test, cfg);
  ModelResult r;
  r.name = name;
  r.float_accuracy = tr.final_test_accuracy;
  r.converged = tr.final_test_accuracy > 1.5f / static_cast<float>(train.num_classes);
  r.deployed_params = net.DeployedParameterCount();
  NeuroCQuantOptions opt;
  opt.encoding = encoding;
  NeuroCModel model = NeuroCModel::FromTrained(net, train, opt);
  r.quant_accuracy = model.EvaluateAccuracy(QuantizeInputs(test));
  r.program_bytes = DeployedModel::EstimateProgramBytes(model);
  r.deployable = r.program_bytes <= kFlashBudget;
  if (r.deployable) {
    DeployedModel deployed = DeployedModel::Deploy(model, Stm32f072rb().ToMachineConfig());
    r.latency_ms = deployed.MeasureLatencyMs();
  }
  return r;
}

inline void PrintHeader(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

// Writes a finished JsonWriter document to `path` and prints the conventional
// "wrote <path>" line every bench ends with. All BENCH_*.json emission goes through this
// (and JsonWriter) so output stays consistently escaped and formatted across benches.
inline void WriteBenchJson(const std::string& path, const JsonWriter& w) {
  NEUROC_CHECK(w.done());
  if (WriteStringToFile(path, w.str())) {
    std::printf("wrote %s\n", path.c_str());
  }
}

// Appends `r` as one JSON object — shared shape for benches that tabulate ModelResults.
inline void WriteModelResultJson(JsonWriter& w, const ModelResult& r) {
  w.BeginObject();
  w.Key("model").Value(r.name);
  w.Key("float_accuracy").Value(static_cast<double>(r.float_accuracy), 4);
  w.Key("quant_accuracy").Value(static_cast<double>(r.quant_accuracy), 4);
  w.Key("deployed_params").Value(static_cast<uint64_t>(r.deployed_params));
  w.Key("program_bytes").Value(static_cast<uint64_t>(r.program_bytes));
  w.Key("latency_ms").Value(r.latency_ms, 4);
  w.Key("deployable").Value(r.deployable);
  w.Key("converged").Value(r.converged);
  w.EndObject();
}

inline void PrintModelResultHeader() {
  std::printf("%-22s %9s %9s %8s %10s %9s %6s\n", "model", "float_acc", "int8_acc", "params",
              "flash_KB", "lat_ms", "fits");
}

inline void PrintModelResult(const ModelResult& r) {
  std::printf("%-22s %9.4f %9.4f %8zu %10.1f ", r.name.c_str(), r.float_accuracy,
              r.quant_accuracy, r.deployed_params,
              static_cast<double>(r.program_bytes) / 1024.0);
  if (r.deployable) {
    std::printf("%9.2f %6s\n", r.latency_ms, "yes");
  } else {
    std::printf("%9s %6s\n", "-", "NO");
  }
}

}  // namespace benchutil
}  // namespace neuroc

#endif  // NEUROC_BENCH_BENCH_UTIL_H_
