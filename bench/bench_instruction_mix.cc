// Instruction-mix and memory-traffic analysis (quantifies paper Sec. 4.1: on a cache-less
// in-order core the connectivity representation dictates the instruction stream). Profiles
// one inference of a dense q7 MLP layer and of Neuro-C under each encoding at identical
// dimensions, reporting the multiply count (the MAC-free property), load/branch mix, CPI
// and flash/SRAM traffic.

#include <cstdio>

#include "src/core/synthetic.h"
#include "src/runtime/deployed_model.h"
#include "src/runtime/profile.h"

using namespace neuroc;

namespace {

void PrintRow(const char* name, const ExecutionProfile& p, double ms) {
  std::printf("%-10s %9llu %7.2f %8.2f %9llu %9llu %9llu %9llu %9llu\n", name,
              static_cast<unsigned long long>(p.instructions), ms, p.CyclesPerInstruction(),
              static_cast<unsigned long long>(p.multiplies),
              static_cast<unsigned long long>(p.loads),
              static_cast<unsigned long long>(p.branches),
              static_cast<unsigned long long>(p.flash_reads),
              static_cast<unsigned long long>(p.sram_reads + p.sram_writes));
}

}  // namespace

int main() {
  constexpr size_t kIn = 784;
  constexpr size_t kOut = 128;
  constexpr double kDensity = 0.12;
  std::printf("Instruction mix per inference: %zux%zu layer, Neuro-C density %.2f\n\n", kIn,
              kOut, kDensity);
  std::printf("%-10s %9s %7s %8s %9s %9s %9s %9s %9s\n", "kernel", "instrs", "ms", "CPI",
              "muls", "loads", "branches", "flash_rd", "sram_rw");

  {
    Rng rng(1);
    std::vector<QuantDenseLayer> layers;
    layers.push_back(MakeSyntheticDenseLayer(kIn, kOut, true, 11, rng));
    MlpModel mlp = MlpModel::FromLayers(std::move(layers));
    DeployedModel d = DeployedModel::Deploy(mlp);
    const ExecutionProfile p = ProfileInference(d);
    PrintRow("dense_q7", p, d.report().latency_ms);
  }
  for (EncodingKind kind : kAllEncodingKinds) {
    Rng rng(1);
    SyntheticNeuroCLayerSpec spec;
    spec.in_dim = kIn;
    spec.out_dim = kOut;
    spec.density = kDensity;
    spec.encoding = kind;
    std::vector<QuantNeuroCLayer> layers;
    layers.push_back(MakeSyntheticNeuroCLayer(spec, rng));
    NeuroCModel nc = NeuroCModel::FromLayers(std::move(layers));
    DeployedModel d = DeployedModel::Deploy(nc);
    const ExecutionProfile p = ProfileInference(d);
    PrintRow(EncodingKindName(kind), p, d.report().latency_ms);
  }
  std::printf(
      "\nShape checks: dense_q7 executes one multiply per connection (%zu); every Neuro-C\n"
      "encoding executes exactly one per neuron (%zu) — the MAC-free property — and far\n"
      "fewer instructions overall at this sparsity.\n",
      kIn * kOut, kOut);
  return 0;
}
