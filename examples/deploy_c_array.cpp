// Deployment-artifact export: trains a compact Neuro-C model and emits freestanding C
// sources (weights as const arrays + a plain-C inference routine), the files a firmware
// engineer would drop into an arm-none-eabi-gcc project for a real board.
//
// Usage: deploy_c_array [output_dir]     (default: ./neuroc_generated)

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "src/core/neuroc_model.h"
#include "src/data/synth.h"
#include "src/runtime/c_emitter.h"
#include "src/runtime/deployed_model.h"
#include "src/train/trainer.h"

using namespace neuroc;

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : "neuroc_generated";

  Dataset all = MakeDigits8x8(1500, 7);
  Rng rng(8);
  auto [train, test] = all.Split(0.2, rng);

  NeuroCSpec spec;
  spec.hidden = {32};
  spec.layer.ternary.target_density = 0.15f;
  Network net = BuildNeuroC(train.input_dim(), 10, spec, rng);
  TrainConfig cfg;
  cfg.epochs = 10;
  cfg.batch_size = 32;
  cfg.learning_rate = 3e-3f;
  Train(net, train, test, cfg);

  NeuroCModel model = NeuroCModel::FromTrained(net, train);
  const float acc = model.EvaluateAccuracy(QuantizeInputs(test));
  std::printf("trained model: %s, int8 accuracy %.2f%%\n", model.Summary().c_str(),
              100.0f * acc);
  std::printf("constant data: %zu B; estimated program memory: %zu B\n", model.WeightBytes(),
              DeployedModel::EstimateProgramBytes(model));

  const CSources sources = EmitCSources(model, "digits");
  std::filesystem::create_directories(out_dir);
  const std::string h_path = out_dir + "/digits.h";
  const std::string c_path = out_dir + "/digits.c";
  std::ofstream(h_path) << sources.header;
  std::ofstream(c_path) << sources.source;
  std::printf("\nwrote %s (%zu bytes)\n", h_path.c_str(), sources.header.size());
  std::printf("wrote %s (%zu bytes)\n", c_path.c_str(), sources.source.size());

  std::printf("\nAPI:\n");
  std::printf("  #include \"digits.h\"\n");
  std::printf("  int cls = digits_predict(input);   // input: %zu q7 values (frac=%d)\n",
              model.in_dim(), model.input_frac());
  std::printf("\nCompile check: cc -std=c99 -c %s\n", c_path.c_str());
  const std::string cmd = "cc -std=c99 -O2 -Wall -c " + c_path + " -o " + out_dir +
                          "/digits.o && echo '  -> generated C compiles cleanly'";
  return std::system(cmd.c_str()) == 0 ? 0 : 1;
}
