// Encoding explorer: trains a Neuro-C layer, then walks its *learned* adjacency through all
// four sparse encodings, reporting byte footprints and measured Cortex-M0 latency — the
// analysis a developer would run to pick the deployment format for their model, and an
// interactive companion to paper Sec. 4.2/4.3.

#include <cstdio>

#include "src/core/adjacency_stats.h"
#include "src/core/neuroc_model.h"
#include "src/data/synth.h"
#include "src/runtime/deployed_model.h"
#include "src/runtime/platform.h"
#include "src/train/trainer.h"

using namespace neuroc;

int main() {
  std::printf("Encoding explorer: choosing the deployment format for a trained model\n\n");
  Dataset all = MakeMnistLike(3000, 77);
  Rng rng(5);
  auto [train, test] = all.Split(0.2, rng);

  NeuroCSpec spec;
  spec.hidden = {96};
  spec.layer.ternary.target_density = 0.12f;
  Network net = BuildNeuroC(train.input_dim(), 10, spec, rng);
  TrainConfig cfg;
  cfg.epochs = 6;
  cfg.batch_size = 64;
  cfg.learning_rate = 2e-3f;
  Train(net, train, test, cfg);
  std::printf("trained: %s\n", net.Summary().c_str());

  // Inspect the learned connectivity of the first layer.
  auto* layer = dynamic_cast<NeuroCLayer*>(net.modules().front().get());
  const TernaryMatrix adjacency = TernaryMatrix::FromSignTensor(layer->Adjacency());
  std::printf("first-layer learned connectivity:\n%s\n",
              FormatAdjacencyStats(AnalyzeAdjacency(adjacency)).c_str());

  QuantizedDataset qtest = QuantizeInputs(test);
  std::printf("%-8s %10s %10s %10s %9s %9s %10s\n", "format", "meta_B", "index_B", "total_B",
              "flash_KB", "lat_ms", "int8_acc");
  const Encoding* best_size = nullptr;
  double best_latency = 1e9;
  EncodingKind fastest = EncodingKind::kCsc;
  for (EncodingKind kind : kAllEncodingKinds) {
    auto enc = BuildEncoding(kind, adjacency);
    const EncodingSizeBreakdown sizes = enc->Sizes();
    NeuroCQuantOptions opt;
    opt.encoding = kind;
    NeuroCModel model = NeuroCModel::FromTrained(net, train, opt);
    const float acc = model.EvaluateAccuracy(qtest);
    DeployedModel deployed = DeployedModel::Deploy(model, Stm32f072rb().ToMachineConfig());
    const double ms = deployed.MeasureLatencyMs();
    std::printf("%-8s %10zu %10zu %10zu %9.1f %9.2f %10.4f\n", EncodingKindName(kind),
                sizes.metadata_bytes, sizes.index_bytes, sizes.total(),
                deployed.report().program_bytes / 1024.0, ms, acc);
    if (ms < best_latency) {
      best_latency = ms;
      fastest = kind;
    }
    (void)best_size;
  }
  std::printf("\nall four formats encode the identical adjacency, so int8 accuracy is\n"
              "format-independent; pick by the latency/footprint trade-off above.\n");
  std::printf("fastest format for this model: %s (%.2f ms)\n", EncodingKindName(fastest),
              best_latency);

  // The same model on the other low-class devices of Table 1 (clock + wait states differ).
  std::printf("\nlatency of the %s-encoded model across low-class devices:\n",
              EncodingKindName(fastest));
  NeuroCQuantOptions opt;
  opt.encoding = fastest;
  NeuroCModel model = NeuroCModel::FromTrained(net, train, opt);
  for (const PlatformSpec& p : AllPlatforms()) {
    if (p.mcu_class != McuClass::kLow) {
      continue;
    }
    if (DeployedModel::EstimateProgramBytes(model) > p.flash_bytes) {
      std::printf("  %-14s does not fit (%u KB flash)\n", p.name.c_str(),
                  p.flash_bytes / 1024);
      continue;
    }
    DeployedModel deployed = DeployedModel::Deploy(model, p.ToMachineConfig());
    std::printf("  %-14s %7.2f ms @ %.0f MHz (%d flash wait state%s)\n", p.name.c_str(),
                deployed.MeasureLatencyMs(), p.clock_hz / 1e6, p.flash_wait_states,
                p.flash_wait_states == 1 ? "" : "s");
  }
  return 0;
}
