// Quickstart: the full Neuro-C pipeline in ~60 lines.
//
//   1. get a dataset                       (procedural 8x8 digits)
//   2. build + train a Neuro-C network     (quantization-aware, per-neuron scales)
//   3. export an int8 deployment model     (block-encoded ternary adjacency)
//   4. deploy onto the simulated Cortex-M0 (STM32F072RB: 8 MHz, 16 KB RAM, 128 KB flash)
//   5. measure accuracy, latency and program memory
//
// Build: cmake -B build -G Ninja && cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "src/core/neuroc_model.h"
#include "src/data/synth.h"
#include "src/runtime/deployed_model.h"
#include "src/runtime/platform.h"
#include "src/train/trainer.h"

using namespace neuroc;

int main() {
  // 1. Dataset: 2,000 procedurally generated 8x8 digit images, 80/20 split.
  Dataset all = MakeDigits8x8(2000, /*seed=*/1);
  Rng rng(2);
  auto [train, test] = all.Split(0.2, rng);
  std::printf("dataset: %s, %zu train / %zu test, %zu features, %d classes\n",
              all.name.c_str(), train.num_examples(), test.num_examples(),
              train.input_dim(), train.num_classes);

  // 2. A one-hidden-layer Neuro-C network: ternary adjacency learned by fake quantization,
  //    one scale + bias per neuron (the architecture of paper Eq. 1).
  NeuroCSpec spec;
  spec.hidden = {48};
  spec.layer.ternary.target_density = 0.15f;  // keep ~15% of the connections
  Network net = BuildNeuroC(train.input_dim(), 10, spec, rng);
  std::printf("network: %s\n", net.Summary().c_str());

  TrainConfig cfg;
  cfg.epochs = 10;
  cfg.batch_size = 32;
  cfg.learning_rate = 3e-3f;
  cfg.verbose = true;
  const TrainResult result = Train(net, train, test, cfg);
  std::printf("float accuracy: %.2f%%\n", 100.0f * result.final_test_accuracy);

  // 3. Post-training int8 quantization with the block encoding (8-bit indices guaranteed).
  NeuroCModel model = NeuroCModel::FromTrained(net, train);
  const float q_acc = model.EvaluateAccuracy(QuantizeInputs(test));
  std::printf("int8 accuracy:  %.2f%% (%s)\n", 100.0f * q_acc, model.Summary().c_str());

  // 4-5. Deploy to the simulated board and measure.
  DeployedModel deployed = DeployedModel::Deploy(model, Stm32f072rb().ToMachineConfig());
  const double latency_ms = deployed.MeasureLatencyMs();
  std::printf("\n--- deployment on %s ---\n", Stm32f072rb().name.c_str());
  std::printf("inference latency: %.2f ms (%llu cycles @ 8 MHz)\n", latency_ms,
              static_cast<unsigned long long>(deployed.report().cycles_per_inference));
  std::printf("program memory:    %.1f KB (kernel code %zu B + model image %zu B + runtime)\n",
              deployed.report().program_bytes / 1024.0, deployed.report().code_bytes,
              deployed.report().image_bytes);
  std::printf("RAM for buffers:   %zu B of 16 KB\n", deployed.report().ram_bytes);

  // Verify the deployed model agrees with the host reference on a few examples.
  QuantizedDataset qtest = QuantizeInputs(test);
  int agreements = 0;
  for (size_t i = 0; i < 20; ++i) {
    std::span<const int8_t> x(qtest.example(i), qtest.input_dim);
    if (deployed.Predict(x) == model.Predict(x)) {
      ++agreements;
    }
  }
  std::printf("simulator/host agreement on 20 samples: %d/20\n", agreements);
  return 0;
}
