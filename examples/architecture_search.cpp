// Automated model selection under platform constraints — the paper's future-work item made
// concrete: given a dataset, a flash budget and a latency budget, run a random architecture
// search over Neuro-C configurations and print the accuracy/program-memory Pareto front.
//
// Usage: architecture_search [trials]     (default 8)

#include <cstdio>
#include <cstdlib>

#include "src/data/synth.h"
#include "src/runtime/search.h"
#include "src/train/metrics.h"

using namespace neuroc;

int main(int argc, char** argv) {
  const int trials = argc > 1 ? std::atoi(argv[1]) : 8;

  Dataset all = MakeFashionLike(3000, 4242);
  Rng rng(1);
  auto [train, test] = all.Split(0.25, rng);
  std::printf("Architecture search on %s (%zu train / %zu validation), %d trials\n",
              all.name.c_str(), train.num_examples(), test.num_examples(), trials);

  SearchSpace space;
  space.width_choices = {48, 96, 160, 256};
  space.min_hidden_layers = 1;
  space.max_hidden_layers = 2;
  space.density_choices = {0.06f, 0.1f, 0.15f, 0.22f};

  SearchConstraints constraints;
  constraints.max_program_bytes = 64 * 1024;  // leave half the flash for the application
  constraints.max_latency_ms = 60.0;          // duty-cycle budget

  TrainConfig cfg;
  cfg.epochs = 5;
  cfg.batch_size = 64;
  cfg.learning_rate = 2e-3f;
  cfg.lr_decay = 0.9f;

  std::printf("constraints: flash <= %zu KB, latency <= %.0f ms (on %s)\n\n",
              constraints.max_program_bytes / 1024, constraints.max_latency_ms,
              Stm32f072rb().name.c_str());

  const SearchResult result =
      RandomSearch(train, test, space, constraints, trials, cfg, /*seed=*/99);

  std::printf("%-20s %9s %9s %9s %9s\n", "config", "int8_acc", "flash_KB", "lat_ms",
              "feasible");
  for (const SearchCandidate& c : result.candidates) {
    std::printf("%-20s %9.4f %9.1f %9.2f %9s\n", c.description.c_str(), c.accuracy,
                c.program_bytes / 1024.0, c.latency_ms, c.feasible ? "yes" : "no");
  }

  std::printf("\nPareto front (memory -> accuracy):\n");
  for (size_t idx : result.pareto) {
    const SearchCandidate& c = result.candidates[idx];
    std::printf("  %-20s acc %.4f at %.1f KB / %.2f ms\n", c.description.c_str(), c.accuracy,
                c.program_bytes / 1024.0, c.latency_ms);
  }
  if (result.best >= 0) {
    const SearchCandidate& b = result.candidates[static_cast<size_t>(result.best)];
    std::printf("\nselected: %s (accuracy %.4f within budget)\n", b.description.c_str(),
                b.accuracy);
  } else {
    std::printf("\nno configuration satisfied the constraints — relax the budget.\n");
  }
  return 0;
}
