// Embedded-sensing scenario from the paper's introduction: a battery-powered BLE sensor
// node that must classify accelerometer windows locally (idle / walking / running / fall /
// machine vibration) within a tight per-wakeup energy budget, transmitting only high-level
// events instead of raw data.
//
// The example sizes a Neuro-C classifier for that budget, deploys it on the simulated
// Cortex-M0 and checks the whole wakeup fits the timing/energy envelope, comparing against
// the dense-MLP alternative.

#include <cstdio>

#include "src/core/mlp_model.h"
#include "src/core/neuroc_model.h"
#include "src/data/synth.h"
#include "src/runtime/deployed_model.h"
#include "src/runtime/platform.h"
#include "src/train/metrics.h"
#include "src/train/trainer.h"

using namespace neuroc;

namespace {

// A duty-cycled sensing budget: one 128-sample window per second; the MCU must finish
// feature extraction + inference + radio handoff in this slice to return to deep sleep.
constexpr double kWakeupBudgetMs = 30.0;
constexpr double kFeatureExtractionMs = 6.0;   // Goertzel bins + statistics (measured off-line)
constexpr double kRadioHandoffMs = 4.0;        // enqueue event for BLE advertisement
constexpr double kActiveCurrentMa = 4.2;       // Cortex-M0 @ 8 MHz, flash on
constexpr double kSleepCurrentUa = 1.9;

void ReportBudget(const char* name, double inference_ms, size_t program_bytes) {
  const double total = kFeatureExtractionMs + inference_ms + kRadioHandoffMs;
  const double duty = total / 1000.0;
  // Average current for a 1 Hz duty cycle: active fraction + sleep remainder.
  const double avg_ua = duty * kActiveCurrentMa * 1000.0 + (1.0 - duty) * kSleepCurrentUa;
  const double battery_days = 225000.0 / avg_ua / 24.0;  // 225 mAh coin cell
  std::printf("%-12s inference %6.2f ms | wakeup total %6.2f ms (budget %.0f ms) %s | "
              "flash %5.1f KB | est. battery %.0f days\n",
              name, inference_ms, total, kWakeupBudgetMs,
              total <= kWakeupBudgetMs ? "OK  " : "OVER", program_bytes / 1024.0,
              battery_days);
}

}  // namespace

int main() {
  std::printf("Event detection on a duty-cycled BLE sensor node (Cortex-M0 @ 8 MHz)\n\n");
  Dataset all = MakeEventDetection(3000, 99);
  Rng rng(3);
  auto [train, test] = all.Split(0.2, rng);
  std::printf("dataset: %zu-dim feature vectors from 3-axis windows, %d event classes\n\n",
              train.input_dim(), train.num_classes);

  TrainConfig cfg;
  cfg.epochs = 12;
  cfg.batch_size = 32;
  cfg.learning_rate = 2e-3f;

  // Neuro-C classifier sized for the budget.
  NeuroCSpec nc_spec;
  nc_spec.hidden = {48, 24};
  nc_spec.layer.ternary.target_density = 0.2f;
  Network nc_net = BuildNeuroC(train.input_dim(), 5, nc_spec, rng);
  const TrainResult nc_tr = Train(nc_net, train, test, cfg);
  NeuroCModel nc_model = NeuroCModel::FromTrained(nc_net, train);
  const float nc_acc = nc_model.EvaluateAccuracy(QuantizeInputs(test));
  DeployedModel nc_dep = DeployedModel::Deploy(nc_model, Stm32f072rb().ToMachineConfig());
  const double nc_ms = nc_dep.MeasureLatencyMs();

  // Dense MLP of the same layer widths, for contrast.
  Network mlp_net = BuildMlp(train.input_dim(), 5, {{48, 24}, 0.0f, false}, rng);
  const TrainResult mlp_tr = Train(mlp_net, train, test, cfg);
  MlpModel mlp_model = MlpModel::FromTrained(mlp_net, train);
  const float mlp_acc = mlp_model.EvaluateAccuracy(QuantizeInputs(test));
  DeployedModel mlp_dep = DeployedModel::Deploy(mlp_model, Stm32f072rb().ToMachineConfig());
  const double mlp_ms = mlp_dep.MeasureLatencyMs();

  std::printf("accuracy: neuroc %.2f%% (float %.2f%%) | mlp %.2f%% (float %.2f%%)\n\n",
              100.0f * nc_acc, 100.0f * nc_tr.final_test_accuracy, 100.0f * mlp_acc,
              100.0f * mlp_tr.final_test_accuracy);
  ReportBudget("neuroc", nc_ms, nc_dep.report().program_bytes);
  ReportBudget("mlp", mlp_ms, mlp_dep.report().program_bytes);

  // Deployment-grade evaluation: for a fall detector, per-class recall matters more than
  // accuracy — report the full confusion summary of the quantized Neuro-C model.
  QuantizedDataset qtest = QuantizeInputs(test);
  const std::vector<std::string> names{"idle", "walking", "running", "fall", "vibration"};
  ConfusionMatrix cm(5);
  for (size_t i = 0; i < qtest.num_examples(); ++i) {
    std::span<const int8_t> x(qtest.example(i), qtest.input_dim);
    cm.Add(qtest.labels[i], nc_model.Predict(x));
  }
  std::printf("\nNeuro-C per-class metrics on the test set:\n%s", cm.Format(names).c_str());

  std::printf("\nEvent classification spot check (simulated MCU):\n");
  const char* kClassNames[5] = {"idle", "walking", "running", "fall", "vibration"};
  int shown = 0;
  for (size_t i = 0; i < qtest.num_examples() && shown < 8; ++i) {
    std::span<const int8_t> x(qtest.example(i), qtest.input_dim);
    const int predicted = nc_dep.Predict(x);
    std::printf("  window %2zu: true=%-9s predicted=%-9s %s\n", i,
                kClassNames[qtest.labels[i]], kClassNames[predicted],
                predicted == qtest.labels[i] ? "" : "(miss)");
    ++shown;
  }
  return 0;
}
